package baseline

import (
	"math"
	"testing"

	"aqppp/internal/cube"
	"aqppp/internal/engine"
	"aqppp/internal/sample"
	"aqppp/internal/stats"
)

func testTable(n int, seed uint64) *engine.Table {
	r := stats.NewRNG(seed)
	c1 := make([]int64, n)
	c2 := make([]int64, n)
	a := make([]float64, n)
	for i := 0; i < n; i++ {
		c1[i] = int64(r.Intn(50) + 1)
		c2[i] = int64(r.Intn(20) + 1)
		a[i] = 100 + 2*float64(c1[i]) + 10*r.NormFloat64()
	}
	return engine.MustNewTable("t",
		engine.NewIntColumn("c1", c1),
		engine.NewIntColumn("c2", c2),
		engine.NewFloatColumn("a", a),
	)
}

func TestAggPreExact(t *testing.T) {
	tbl := testTable(5000, 1)
	ap, err := NewAggPre(tbl, cube.Template{Agg: "a", Dims: []string{"c1", "c2"}})
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRNG(3)
	for trial := 0; trial < 30; trial++ {
		lo1 := float64(r.Intn(40) + 1)
		hi1 := lo1 + float64(r.Intn(10))
		lo2 := float64(r.Intn(15) + 1)
		hi2 := lo2 + float64(r.Intn(5))
		q := engine.Query{Func: engine.Sum, Col: "a", Ranges: []engine.Range{
			{Col: "c1", Lo: lo1, Hi: hi1}, {Col: "c2", Lo: lo2, Hi: hi2},
		}}
		truth, _ := tbl.Execute(q)
		got, err := ap.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-truth.Value) > 1e-6 {
			t.Fatalf("AggPre = %v, want %v", got, truth.Value)
		}
	}
	if ap.SizeBytes() <= 0 {
		t.Error("SizeBytes = 0")
	}
}

func TestAggPreRejectsWrongAggregate(t *testing.T) {
	tbl := testTable(500, 2)
	ap, _ := NewAggPre(tbl, cube.Template{Agg: "a", Dims: []string{"c1"}})
	if _, err := ap.Answer(engine.Query{Func: engine.Avg, Col: "a"}); err == nil {
		t.Error("AVG accepted")
	}
}

func TestFullCubeCells(t *testing.T) {
	tbl := testTable(5000, 3)
	cells, err := FullCubeCells(tbl, cube.Template{Agg: "a", Dims: []string{"c1", "c2"}})
	if err != nil {
		t.Fatal(err)
	}
	if cells != 50*20 {
		t.Errorf("cells = %d, want 1000", cells)
	}
	if _, err := FullCubeCells(tbl, cube.Template{Agg: "a", Dims: []string{"nope"}}); err == nil {
		t.Error("missing column accepted")
	}
}

func TestAPACalibrationSatisfiesFacts(t *testing.T) {
	tbl := testTable(20000, 4)
	s, err := sample.NewUniform(tbl, 0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	apa, err := NewAPA(tbl, s, APAConfig{
		Measure: "a", Dims: []string{"c1"}, FactsPerDim: 8, Resamples: 10, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The calibrated weights must reproduce every fact exactly.
	for _, fa := range apa.facts {
		q := engine.Query{Func: engine.Sum, Col: "a",
			Ranges: []engine.Range{{Col: fa.dim, Lo: fa.lo, Hi: fa.hi}}}
		got, err := apa.estimateWith(apa.s, apa.weights, q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-fa.value) > 1e-4*math.Max(math.Abs(fa.value), 1) {
			t.Errorf("fact [%v,%v]: calibrated %v != exact %v", fa.lo, fa.hi, got, fa.value)
		}
	}
}

func TestAPAImprovesOnPlainAQPForFactAlignedQueries(t *testing.T) {
	tbl := testTable(30000, 5)
	s, _ := sample.NewUniform(tbl, 0.03, 11)
	apa, err := NewAPA(tbl, s, APAConfig{
		Measure: "a", Dims: []string{"c1"}, FactsPerDim: 10, Resamples: 30, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A query spanning whole fact blocks is answered (nearly) exactly.
	q := engine.Query{Func: engine.Sum, Col: "a",
		Ranges: []engine.Range{{Col: "c1", Lo: 1, Hi: 25}}}
	truth, _ := tbl.Execute(q)
	est, err := apa.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(est.Value-truth.Value) / truth.Value; rel > 0.02 {
		t.Errorf("fact-aligned APA answer off by %v", rel)
	}
}

func TestAPAAnswerGeneralQuery(t *testing.T) {
	tbl := testTable(30000, 6)
	s, _ := sample.NewUniform(tbl, 0.05, 15)
	apa, err := NewAPA(tbl, s, APAConfig{
		Measure: "a", Dims: []string{"c1"}, FactsPerDim: 8, Resamples: 20, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := engine.Query{Func: engine.Sum, Col: "a",
		Ranges: []engine.Range{{Col: "c1", Lo: 13, Hi: 37}}}
	truth, _ := tbl.Execute(q)
	est, err := apa.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(est.Value-truth.Value) / truth.Value; rel > 0.1 {
		t.Errorf("APA answer off by %v", rel)
	}
	if est.HalfWidth <= 0 {
		t.Error("APA interval empty")
	}
}

func TestAPAValidation(t *testing.T) {
	tbl := testTable(1000, 7)
	s, _ := sample.NewUniform(tbl, 0.1, 19)
	if _, err := NewAPA(tbl, s, APAConfig{Measure: "a"}); err == nil {
		t.Error("no dims accepted")
	}
	if _, err := NewAPA(tbl, s, APAConfig{Measure: "nope", Dims: []string{"c1"}}); err == nil {
		t.Error("bad measure accepted")
	}
	mb, _ := sample.NewMeasureBiased(tbl, "a", 0.1, 21)
	if _, err := NewAPA(tbl, mb, APAConfig{Measure: "a", Dims: []string{"c1"}}); err == nil {
		t.Error("non-uniform sample accepted")
	}
	apa, err := NewAPA(tbl, s, APAConfig{Measure: "a", Dims: []string{"c1"}, Resamples: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := apa.Answer(engine.Query{Func: engine.Count}); err == nil {
		t.Error("COUNT accepted")
	}
}
