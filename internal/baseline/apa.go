// Package baseline implements the comparison systems of the paper's
// evaluation: plain AQP, exact AggPre over the full P-Cube, and APA+
// [Jin et al., ICDE 2006], which combines a sample with a small set of
// exact 1-dimensional statistics ("facts") by reweighting the sample.
package baseline

import (
	"fmt"
	"math/bits"

	"aqppp/internal/aqp"
	"aqppp/internal/engine"
	"aqppp/internal/linalg"
	"aqppp/internal/sample"
	"aqppp/internal/stats"
)

// APAConfig configures the APA+ baseline.
type APAConfig struct {
	// Measure is the aggregation attribute whose 1-D facts are known.
	Measure string
	// Dims are the condition attributes; each gets FactsPerDim exact
	// block sums computed over the full data (the paper's
	// "1-dimensional facts ... available in the system").
	Dims []string
	// FactsPerDim is the number of equal-width fact blocks per dimension
	// (default 16).
	FactsPerDim int
	// Confidence is the CI level (default 0.95).
	Confidence float64
	// Resamples sets the bootstrap replicates for interval estimation
	// (default 100). APA+ has no closed-form interval because the
	// reweighting couples all rows.
	Resamples int
	// Seed drives the bootstrap.
	Seed uint64
}

// APA answers queries from a sample whose weights are calibrated to match
// exact per-dimension marginal facts: minimize ||w − w0||² subject to
// Σ w_i·a_i·1[block_j(i)] = F_j for every fact block j (a constrained
// least squares solved exactly via its KKT system — the stand-in for the
// paper's gurobi QP).
type APA struct {
	cfg     APAConfig
	s       *sample.Sample
	weights []float64
	facts   []fact
}

type fact struct {
	dim    string
	lo, hi float64 // ordinal block [lo, hi]
	value  float64 // exact SUM(measure) over the block
}

// NewAPA computes the facts over the full table, draws no new sample (it
// reuses s), and calibrates the weights.
func NewAPA(tbl *engine.Table, s *sample.Sample, cfg APAConfig) (*APA, error) {
	if cfg.FactsPerDim == 0 {
		cfg.FactsPerDim = 16
	}
	if cfg.Confidence == 0 {
		cfg.Confidence = 0.95
	}
	if cfg.Resamples == 0 {
		cfg.Resamples = 100
	}
	if len(cfg.Dims) == 0 {
		return nil, fmt.Errorf("baseline: APA needs at least one dimension")
	}
	if s.Kind != sample.Uniform {
		return nil, fmt.Errorf("baseline: APA requires a uniform sample, got %v", s.Kind)
	}
	a := &APA{cfg: cfg, s: s}
	for _, dim := range cfg.Dims {
		col, err := tbl.Column(dim)
		if err != nil {
			return nil, err
		}
		lo, hi := col.OrdinalDomain()
		if hi < lo {
			return nil, fmt.Errorf("baseline: empty dimension %q", dim)
		}
		width := (hi - lo + 1) / float64(cfg.FactsPerDim)
		for b := 0; b < cfg.FactsPerDim; b++ {
			blo := lo + float64(b)*width
			bhi := lo + float64(b+1)*width - 1
			if b == cfg.FactsPerDim-1 {
				bhi = hi
			}
			if bhi < blo {
				continue
			}
			res, err := tbl.Execute(engine.Query{
				Func: engine.Sum, Col: cfg.Measure,
				Ranges: []engine.Range{{Col: dim, Lo: blo, Hi: bhi}},
			})
			if err != nil {
				return nil, err
			}
			a.facts = append(a.facts, fact{dim: dim, lo: blo, hi: bhi, value: res.Value})
		}
	}
	w, err := a.calibrate(s)
	if err != nil {
		return nil, err
	}
	a.weights = w
	return a, nil
}

// calibrate solves the constrained least squares for the given sample.
func (a *APA) calibrate(s *sample.Sample) ([]float64, error) {
	n := s.Size()
	w0 := make([]float64, n)
	for i := range w0 {
		w0[i] = s.InvP[i] / float64(n) // uniform: N/n per row
	}
	mcol, err := s.Table.Column(a.cfg.Measure)
	if err != nil {
		return nil, err
	}
	b := linalg.NewMatrix(len(a.facts), n)
	f := make([]float64, len(a.facts))
	for j, fa := range a.facts {
		col, err := s.Table.Column(fa.dim)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			ord := col.Ordinal(i)
			if ord >= fa.lo && ord <= fa.hi {
				b.Set(j, i, mcol.Float(i))
			}
		}
		f[j] = fa.value
	}
	return linalg.LeastSquaresWithConstraints(b, w0, f)
}

// Answer estimates a SUM query with a bootstrap confidence interval.
func (a *APA) Answer(q engine.Query) (aqp.Estimate, error) {
	if q.Func != engine.Sum || q.Col != a.cfg.Measure {
		return aqp.Estimate{}, fmt.Errorf("baseline: APA answers SUM(%s) only", a.cfg.Measure)
	}
	point, err := a.estimateWith(a.s, a.weights, q)
	if err != nil {
		return aqp.Estimate{}, err
	}
	// Bootstrap: resample rows, recalibrate, re-estimate.
	r := stats.NewRNG(a.cfg.Seed + 0x9e3779b9)
	n := a.s.Size()
	reps := make([]float64, 0, a.cfg.Resamples)
	idx := make([]int, n)
	for rep := 0; rep < a.cfg.Resamples; rep++ {
		for i := range idx {
			idx[i] = r.Intn(n)
		}
		rs := resampleUniform(a.s, idx)
		w, err := a.calibrate(rs)
		if err != nil {
			continue // singular resample: skip
		}
		v, err := a.estimateWith(rs, w, q)
		if err != nil {
			return aqp.Estimate{}, err
		}
		reps = append(reps, v)
	}
	alpha := (1 - a.cfg.Confidence) / 2
	lo := stats.Quantile(reps, alpha)
	hi := stats.Quantile(reps, 1-alpha)
	return aqp.Estimate{
		Value:      point,
		HalfWidth:  (hi - lo) / 2,
		Confidence: a.cfg.Confidence,
		SampleRows: n,
	}, nil
}

func (a *APA) estimateWith(s *sample.Sample, w []float64, q engine.Query) (float64, error) {
	sel, err := s.Table.Filter(q.Ranges)
	if err != nil {
		return 0, err
	}
	col, err := s.Table.Column(q.Col)
	if err != nil {
		return 0, err
	}
	est := 0.0
	for wi, word := range sel.Words() {
		base := wi << 6
		for word != 0 {
			i := base + bits.TrailingZeros64(word)
			word &= word - 1
			est += w[i] * col.Float(i)
		}
	}
	return est, nil
}

// resampleUniform builds a with-replacement uniform resample.
func resampleUniform(s *sample.Sample, idx []int) *sample.Sample {
	out := &sample.Sample{
		Kind:       s.Kind,
		Table:      s.Table.Gather(s.Table.Name+"_apa", idx),
		SourceRows: s.SourceRows,
		InvP:       make([]float64, len(idx)),
	}
	for i, j := range idx {
		out.InvP[i] = s.InvP[j]
	}
	return out
}
