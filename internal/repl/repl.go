// Package repl implements the interactive shell behind cmd/aqppp-cli:
// line-based command handling over a prepared AQP++ session with
// approximate, sample-only and exact answering modes. It is separated
// from the binary so the command surface is unit-testable.
package repl

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"aqppp"
	"aqppp/internal/aqp"
	"aqppp/internal/engine"
	"aqppp/internal/sql"
)

// Session holds the state one shell operates on.
type Session struct {
	DB       *aqppp.DB
	Table    *engine.Table
	Prepared *aqppp.Prepared
	// Timeout bounds each statement's wall time; 0 means unlimited. A
	// statement that overruns prints a budget/cancel error like any
	// other failure.
	Timeout time.Duration
	// NewContext, when set, supplies the base context for each
	// statement; the CLI wires it to SIGINT so Ctrl-C aborts the running
	// query instead of the shell. Nil means context.Background. The
	// session holds a factory rather than a context so every statement
	// gets a fresh one.
	NewContext func() (context.Context, context.CancelFunc)
	// Contract, when set, answers default-mode statements under an
	// a-priori error bound (QueryWithContract) instead of plain AQP++,
	// printing which strategy served; ".progress" streams also
	// terminate once the contract is met.
	Contract *aqppp.Contract
}

// NewSession wraps an already-prepared database.
func NewSession(db *aqppp.DB, tbl *engine.Table, prep *aqppp.Prepared) *Session {
	return &Session{DB: db, Table: tbl, Prepared: prep}
}

// statementContext builds the context one statement runs under: the
// session's base factory (or Background) bounded by the session
// timeout.
func (s *Session) statementContext() (context.Context, context.CancelFunc) {
	ctx, cancel := context.Background(), context.CancelFunc(func() {})
	if s.NewContext != nil {
		ctx, cancel = s.NewContext()
	}
	if s.Timeout > 0 {
		tctx, tcancel := context.WithTimeout(ctx, s.Timeout)
		base := cancel
		return tctx, func() { tcancel(); base() }
	}
	return ctx, cancel
}

// Run reads commands from r line by line, writing responses to w, until
// EOF or a quit command.
func (s *Session) Run(r io.Reader, w io.Writer) error {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Fprint(w, "aqppp> ")
	for scanner.Scan() {
		if !s.HandleLine(scanner.Text(), w) {
			return nil
		}
		fmt.Fprint(w, "aqppp> ")
	}
	return scanner.Err()
}

// HandleLine processes one command line; it returns false when the shell
// should exit.
func (s *Session) HandleLine(line string, w io.Writer) bool {
	line = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(line), ";"))
	switch {
	case line == "":
	case line == ".quit" || line == ".exit":
		return false
	case line == ".help":
		fmt.Fprintln(w, helpText)
	case line == ".schema":
		s.printSchema(w)
	case line == ".stats":
		s.printStats(w)
	case strings.HasPrefix(line, ".exact "):
		printErr(w, s.runExact(w, strings.TrimPrefix(line, ".exact ")))
	case strings.HasPrefix(line, ".aqp "):
		printErr(w, s.runAQP(w, strings.TrimPrefix(line, ".aqp ")))
	case strings.HasPrefix(line, ".progress "):
		printErr(w, s.runProgressive(w, strings.TrimPrefix(line, ".progress ")))
	case strings.HasPrefix(line, "."):
		fmt.Fprintf(w, "unknown command %q; try .help\n", line)
	default:
		printErr(w, s.runApprox(w, line))
	}
	return true
}

// printErr renders a statement failure the way the shell always has;
// the shell keeps going where RunScript stops.
func printErr(w io.Writer, err error) {
	if err != nil {
		fmt.Fprintln(w, "error:", err)
	}
}

// RunScript executes semicolon-separated statements in order, writing
// answers to w, and stops at the first failure, returning it. Statements
// take the same forms the shell accepts (".exact"/".aqp" prefixes,
// ".stats", ".schema"); cmd/aqppp-cli's -e mode folds the returned
// error's kind into its exit code.
func (s *Session) RunScript(script string, w io.Writer) error {
	for _, stmt := range strings.Split(script, ";") {
		stmt = strings.TrimSpace(stmt)
		var err error
		switch {
		case stmt == "":
		case stmt == ".stats":
			s.printStats(w)
		case stmt == ".schema":
			s.printSchema(w)
		case strings.HasPrefix(stmt, ".exact "):
			err = s.runExact(w, strings.TrimPrefix(stmt, ".exact "))
		case strings.HasPrefix(stmt, ".aqp "):
			err = s.runAQP(w, strings.TrimPrefix(stmt, ".aqp "))
		case strings.HasPrefix(stmt, ".progress "):
			err = s.runProgressive(w, strings.TrimPrefix(stmt, ".progress "))
		case strings.HasPrefix(stmt, "."):
			err = fmt.Errorf("unknown command %q", stmt)
		default:
			err = s.runApprox(w, stmt)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

const helpText = "SELECT ...;            approximate answer (AQP++; honors -max-rel/abs-error)\n" +
	".aqp SELECT ...;       plain AQP on the same sample\n" +
	".exact SELECT ...;     exact full scan\n" +
	".progress SELECT ...;  stream refining estimates (online aggregation)\n" +
	".stats                 preprocessing statistics\n" +
	".schema                table schema\n" +
	".quit"

func (s *Session) printSchema(w io.Writer) {
	sc := s.Table.Schema()
	for i, n := range sc.Names {
		fmt.Fprintf(w, "  %-24s %v\n", n, sc.Types[i])
	}
}

func (s *Session) printStats(w io.Writer) {
	st := s.Prepared.Stats()
	fmt.Fprintf(w, "  sample: %d rows (%d bytes)\n  cube:   %d cells, shape %v (%d bytes)\n  built in %.2fs\n",
		st.SampleRows, st.SampleBytes, st.CubeCells, st.CubeShape, st.CubeBytes, st.TotalSeconds)
}

func (s *Session) runApprox(w io.Writer, stmt string) error {
	if s.Contract != nil {
		return s.runContract(w, stmt)
	}
	ctx, cancel := s.statementContext()
	defer cancel()
	t0 := time.Now()
	res, err := s.Prepared.QueryContext(ctx, stmt)
	el := time.Since(t0)
	if err != nil {
		return err
	}
	if len(res.Groups) > 0 {
		for _, g := range res.Groups {
			fmt.Fprintf(w, "  %-20s %14.2f ± %-12.2f (pre: %s)\n", g.Key, g.Value, g.HalfWidth, g.Pre)
		}
		fmt.Fprintf(w, "  [%d groups, %v]\n", len(res.Groups), el.Round(time.Microsecond))
		return nil
	}
	fmt.Fprintf(w, "  %14.2f ± %.2f (%.0f%% CI)  pre=%s  [%v]\n",
		res.Value, res.HalfWidth, 100*res.Confidence, res.Pre, el.Round(time.Microsecond))
	return nil
}

func (s *Session) runContract(w io.Writer, stmt string) error {
	ctx, cancel := s.statementContext()
	defer cancel()
	t0 := time.Now()
	res, err := s.Prepared.QueryWithContract(ctx, stmt, *s.Contract)
	el := time.Since(t0)
	if err != nil {
		return err
	}
	esc := ""
	if res.Escalated {
		esc = ", escalated"
	}
	fmt.Fprintf(w, "  %14.2f ± %.2f (%.0f%% CI)  strategy=%s%s  [%v]\n",
		res.Value, res.HalfWidth, 100*res.Confidence, res.Strategy, esc, el.Round(time.Microsecond))
	return nil
}

func (s *Session) runProgressive(w io.Writer, stmt string) error {
	ctx, cancel := s.statementContext()
	defer cancel()
	t0 := time.Now()
	sum, err := s.Prepared.QueryProgressive(ctx, stmt,
		aqppp.ProgressiveOptions{Contract: s.Contract},
		func(r aqppp.ProgressiveRound) error {
			fmt.Fprintf(w, "  round %2d: %14.2f ± %-12.2f (%d rows)\n",
				r.Round, r.Value, r.HalfWidth, r.SampleRows)
			return nil
		})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  [%s after %d rounds, %v]\n",
		sum.Reason, sum.Rounds, time.Since(t0).Round(time.Microsecond))
	return nil
}

func (s *Session) runAQP(w io.Writer, stmt string) error {
	q, err := sql.ParseAndCompile(stmt, s.Table)
	if err != nil {
		return err
	}
	t0 := time.Now()
	est, err := aqp.EstimateQuery(s.Prepared.Sample(), q, 0.95)
	el := time.Since(t0)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %14.2f ± %.2f (95%% CI, plain AQP)  [%v]\n", est.Value, est.HalfWidth, el.Round(time.Microsecond))
	return nil
}

func (s *Session) runExact(w io.Writer, stmt string) error {
	ctx, cancel := s.statementContext()
	defer cancel()
	t0 := time.Now()
	res, err := s.DB.ExactContext(ctx, stmt)
	el := time.Since(t0)
	if err != nil {
		return err
	}
	if len(res.Groups) > 0 {
		for _, g := range res.Groups {
			fmt.Fprintf(w, "  %-20s %14.2f (%d rows)\n", g.Key, g.Value, g.Rows)
		}
		fmt.Fprintf(w, "  [%d groups, %v]\n", len(res.Groups), el.Round(time.Microsecond))
		return nil
	}
	fmt.Fprintf(w, "  %14.2f (exact)  [%v]\n", res.Value, el.Round(time.Microsecond))
	return nil
}
