package repl

import (
	"strings"
	"testing"

	"aqppp"
	"aqppp/internal/engine"
	"aqppp/internal/stats"
)

func newTestSession(t *testing.T) *Session {
	t.Helper()
	r := stats.NewRNG(1)
	n := 10000
	k := make([]int64, n)
	v := make([]float64, n)
	for i := 0; i < n; i++ {
		k[i] = int64(r.Intn(500) + 1)
		v[i] = 100 + 10*r.NormFloat64()
	}
	tbl := engine.MustNewTable("demo",
		engine.NewIntColumn("k", k),
		engine.NewFloatColumn("v", v),
	)
	db := aqppp.NewDB()
	if err := db.Register(tbl); err != nil {
		t.Fatal(err)
	}
	prep, err := db.Prepare(aqppp.PrepareOptions{
		Table: "demo", Aggregate: "v", Dimensions: []string{"k"},
		SampleRate: 0.1, CellBudget: 20, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return NewSession(db, tbl, prep)
}

func run(t *testing.T, s *Session, line string) string {
	t.Helper()
	var sb strings.Builder
	s.HandleLine(line, &sb)
	return sb.String()
}

func TestHandleApproxQuery(t *testing.T) {
	s := newTestSession(t)
	out := run(t, s, "SELECT SUM(v) FROM demo WHERE k BETWEEN 10 AND 400;")
	if !strings.Contains(out, "±") || !strings.Contains(out, "pre=") {
		t.Errorf("approx output malformed: %q", out)
	}
}

func TestHandleAQPAndExact(t *testing.T) {
	s := newTestSession(t)
	out := run(t, s, ".aqp SELECT SUM(v) FROM demo WHERE k BETWEEN 10 AND 400")
	if !strings.Contains(out, "plain AQP") {
		t.Errorf("aqp output malformed: %q", out)
	}
	out = run(t, s, ".exact SELECT COUNT(*) FROM demo")
	if !strings.Contains(out, "10000.00 (exact)") {
		t.Errorf("exact output malformed: %q", out)
	}
}

func TestHandleMetaCommands(t *testing.T) {
	s := newTestSession(t)
	if out := run(t, s, ".help"); !strings.Contains(out, ".exact") {
		t.Errorf("help missing: %q", out)
	}
	if out := run(t, s, ".schema"); !strings.Contains(out, "int64") || !strings.Contains(out, "v") {
		t.Errorf("schema missing: %q", out)
	}
	if out := run(t, s, ".stats"); !strings.Contains(out, "sample:") || !strings.Contains(out, "cube:") {
		t.Errorf("stats missing: %q", out)
	}
	if out := run(t, s, ".bogus"); !strings.Contains(out, "unknown command") {
		t.Errorf("unknown-command handling: %q", out)
	}
	if out := run(t, s, "   "); out != "" {
		t.Errorf("blank line produced output: %q", out)
	}
}

func TestHandleErrors(t *testing.T) {
	s := newTestSession(t)
	for _, line := range []string{
		"SELECT garbage",
		".aqp SELECT SUM(nope) FROM demo",
		".exact SELECT SUM(v) FROM othertable",
	} {
		if out := run(t, s, line); !strings.Contains(out, "error:") {
			t.Errorf("%q: expected error, got %q", line, out)
		}
	}
}

func TestRunScript(t *testing.T) {
	s := newTestSession(t)
	var out strings.Builder
	err := s.RunScript("SELECT SUM(v) FROM demo WHERE k BETWEEN 10 AND 400; .exact SELECT COUNT(*) FROM demo; .stats", &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "pre=") || !strings.Contains(text, "(exact)") || !strings.Contains(text, "sample:") {
		t.Errorf("script output malformed: %q", text)
	}

	// The first failure stops the script, carries its taxonomy kind, and
	// later statements never run.
	out.Reset()
	err = s.RunScript("SELECT garbage; .exact SELECT COUNT(*) FROM demo", &out)
	if err == nil {
		t.Fatal("bad statement did not fail the script")
	}
	if k := aqppp.ErrorKindOf(err); k != aqppp.ErrParse {
		t.Errorf("kind = %v, want parse", k)
	}
	if strings.Contains(out.String(), "(exact)") {
		t.Errorf("script kept running past the failure: %q", out.String())
	}

	out.Reset()
	if err := s.RunScript(".bogus", &out); err == nil {
		t.Error("unknown command accepted in script mode")
	}
}

func TestQuit(t *testing.T) {
	s := newTestSession(t)
	var sb strings.Builder
	if s.HandleLine(".quit", &sb) {
		t.Error(".quit did not stop the shell")
	}
	if s.HandleLine(".exit", &sb) {
		t.Error(".exit did not stop the shell")
	}
	if !s.HandleLine("SELECT COUNT(*) FROM demo", &sb) {
		t.Error("normal query stopped the shell")
	}
}

func TestRunLoop(t *testing.T) {
	s := newTestSession(t)
	in := strings.NewReader(".schema\nSELECT COUNT(*) FROM demo;\n.quit\nnever reached\n")
	var out strings.Builder
	if err := s.Run(in, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if strings.Count(text, "aqppp>") != 3 {
		t.Errorf("prompt count = %d: %q", strings.Count(text, "aqppp>"), text)
	}
	if strings.Contains(text, "never reached") {
		t.Error("shell kept reading after quit")
	}
}

func TestGroupByThroughShell(t *testing.T) {
	r := stats.NewRNG(9)
	n := 5000
	k := make([]int64, n)
	v := make([]float64, n)
	g := make([]string, n)
	for i := 0; i < n; i++ {
		k[i] = int64(r.Intn(100) + 1)
		v[i] = 50 + 5*r.NormFloat64()
		if i%2 == 0 {
			g[i] = "x"
		} else {
			g[i] = "y"
		}
	}
	tbl := engine.MustNewTable("demo",
		engine.NewIntColumn("k", k),
		engine.NewFloatColumn("v", v),
		engine.NewStringColumn("g", g),
	)
	db := aqppp.NewDB()
	if err := db.Register(tbl); err != nil {
		t.Fatal(err)
	}
	prep, err := db.Prepare(aqppp.PrepareOptions{
		Table: "demo", Aggregate: "v", Dimensions: []string{"k", "g"},
		SampleRate: 0.2, CellBudget: 20, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(db, tbl, prep)
	out := run(t, s, "SELECT SUM(v) FROM demo WHERE k BETWEEN 1 AND 90 GROUP BY g")
	if !strings.Contains(out, "2 groups") {
		t.Errorf("group output malformed: %q", out)
	}
	out = run(t, s, ".exact SELECT SUM(v) FROM demo GROUP BY g")
	if !strings.Contains(out, "2 groups") {
		t.Errorf("exact group output malformed: %q", out)
	}
}
