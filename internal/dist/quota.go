package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// defaultLeaseBatch is how many tokens a lease requests at once: large
// enough to amortize the round trip, small enough that a client's
// unused allowance stranded on one replica stays negligible.
const defaultLeaseBatch = 8

// QuotaLease shares per-client quota state across the fleet by leasing
// token batches from one authority (the coordinator). A replica admits
// a request by consuming one locally cached token; when the cache is
// empty it POSTs /v1/quota/lease and the authority debits its bucket —
// so N processes drain one logical bucket instead of multiplying the
// quota by N. If the authority is unreachable the lease FAILS OPEN
// (admit, count it): quota is load protection, and turning an authority
// outage into a fleet-wide denial of service would invert its purpose.
type QuotaLease struct {
	url    string
	batch  int
	client *http.Client

	mu         sync.Mutex
	tokens     map[string]int
	maxClients int

	calls    atomic.Uint64
	denied   atomic.Uint64
	failOpen atomic.Uint64
}

// NewQuotaLease builds a lease client against the authority's base URL.
// batch <= 0 selects the default batch size.
func NewQuotaLease(url string, batch int, client *http.Client) *QuotaLease {
	if batch <= 0 {
		batch = defaultLeaseBatch
	}
	if client == nil {
		client = http.DefaultClient
	}
	return &QuotaLease{
		url: url, batch: batch, client: client,
		tokens: make(map[string]int), maxClients: 4096,
	}
}

// Allow admits or denies one request for the client. It returns the
// authority's backoff hint on denial, and failOpen=true when the
// authority could not be reached and the request was admitted anyway.
func (q *QuotaLease) Allow(ctx context.Context, client string) (ok bool, retryAfter time.Duration, failedOpen bool) {
	q.mu.Lock()
	if q.tokens[client] > 0 {
		q.tokens[client]--
		q.mu.Unlock()
		return true, 0, false
	}
	q.mu.Unlock()

	q.calls.Add(1)
	granted, ra, err := q.lease(ctx, client)
	if err != nil {
		q.failOpen.Add(1)
		return true, 0, true
	}
	if granted <= 0 {
		q.denied.Add(1)
		return false, ra, false
	}
	if granted > 1 {
		q.mu.Lock()
		if len(q.tokens) >= q.maxClients {
			// Bound the cache; stranded tokens just mean an extra lease
			// round trip later.
			q.tokens = make(map[string]int)
		}
		q.tokens[client] += granted - 1
		q.mu.Unlock()
	}
	return true, 0, false
}

// lease asks the authority for a batch of tokens.
func (q *QuotaLease) lease(ctx context.Context, client string) (granted int, retryAfter time.Duration, err error) {
	body, err := json.Marshal(LeaseRequest{V: WireVersion, Client: client, Want: q.batch})
	if err != nil {
		return 0, 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, q.url+"/v1/quota/lease", bytes.NewReader(body))
	if err != nil {
		return 0, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := q.client.Do(req)
	if err != nil {
		return 0, 0, err
	}
	defer func() { _ = resp.Body.Close() }()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err != nil {
		return 0, 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, 0, fmt.Errorf("lease authority status %d: %s", resp.StatusCode, data)
	}
	var lr LeaseResponse
	if err := json.Unmarshal(data, &lr); err != nil {
		return 0, 0, fmt.Errorf("malformed lease response: %w", err)
	}
	if lr.V != WireVersion {
		return 0, 0, fmt.Errorf("lease authority speaks wire v%d, replica v%d", lr.V, WireVersion)
	}
	return lr.Granted, time.Duration(lr.RetryAfterMS) * time.Millisecond, nil
}

// LeaseSnapshot is the lease client's observable state for /statusz.
type LeaseSnapshot struct {
	Authority     string `json:"authority"`
	CachedClients int    `json:"cached_clients"`
	CachedTokens  int    `json:"cached_tokens"`
	LeaseCalls    uint64 `json:"lease_calls"`
	Denied        uint64 `json:"denied"`
	FailOpen      uint64 `json:"fail_open"`
}

// Snapshot captures the lease client's state.
func (q *QuotaLease) Snapshot() LeaseSnapshot {
	q.mu.Lock()
	clients, tokens := len(q.tokens), 0
	for _, n := range q.tokens {
		tokens += n
	}
	q.mu.Unlock()
	return LeaseSnapshot{
		Authority:     q.url,
		CachedClients: clients,
		CachedTokens:  tokens,
		LeaseCalls:    q.calls.Load(),
		Denied:        q.denied.Load(),
		FailOpen:      q.failOpen.Load(),
	}
}
