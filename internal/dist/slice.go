package dist

import (
	"fmt"
	"math"

	"aqppp/internal/engine"
	"aqppp/internal/shard"
)

// SliceTable carves the shard slice a replica owns out of a full table.
// It runs the same Partition the in-process path runs — identical row
// assignment, identical within-shard source order — then renames the
// slice back to the source table name, because a replica serves its
// slice as the table: its sample, BP-cube and queries all see one
// ordinary resident table. The returned identity is what the replica
// reports in its handshake.
func SliceTable(tbl *engine.Table, layout shard.Layout, index int) (*engine.Table, ShardIdentity, error) {
	if index < 0 || index >= layout.N {
		return nil, ShardIdentity{}, fmt.Errorf("dist: shard index %d outside layout of %d", index, layout.N)
	}
	s, err := shard.Partition(tbl, layout)
	if err != nil {
		return nil, ShardIdentity{}, err
	}
	sh := s.Shards[index]
	slice, err := engine.NewTable(tbl.Name, sh.Table.Columns...)
	if err != nil {
		return nil, ShardIdentity{}, err
	}
	ident := ShardIdentity{
		Index:    index,
		Count:    layout.N,
		Strategy: layout.Strategy.String(),
		Column:   layout.Column,
		Rows:     sh.Rows,
		LoBits:   math.Float64bits(sh.Lo),
		HiBits:   math.Float64bits(sh.Hi),
	}
	return slice, ident, nil
}

// HelloFor assembles the handshake body a replica serves on GET
// /v1/shard: its identity plus its slice's column schemas (type, slice
// ordinal domain, string dictionaries verbatim).
func HelloFor(table *engine.Table, ident ShardIdentity, handles []HandleInfo) HelloResponse {
	hello := HelloResponse{V: WireVersion, Table: table.Name, Shard: ident, Handles: handles}
	for _, c := range table.Columns {
		lo, hi := c.OrdinalDomain()
		hello.Columns = append(hello.Columns, ColumnSchema{
			Name:   c.Name,
			Type:   c.Type.String(),
			LoBits: math.Float64bits(lo),
			HiBits: math.Float64bits(hi),
			Dict:   c.Dict,
		})
	}
	return hello
}
