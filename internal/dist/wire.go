// Package dist is aqppp's cross-process distributed execution
// subsystem: the wire schema and client half of the replica protocol.
// A replica is an aqppp-serve process owning one shard slice (its own
// columns, sample and BP-cube slice) that answers internal partial
// requests; the Coordinator implements the same fan-out/merge contract
// as the in-process shard layer (shard.Group) over the network, so
// distributed answers are bit-identical (exact) and CI-identical
// (approx) to in-process sharded answers. All floating-point payload
// crosses the wire as raw IEEE-754 bit patterns — JSON numbers would
// survive Go's shortest-round-trip encoding for finite values, but
// bits also carry infinities and NaN and make the bit-exactness
// contract self-evident.
package dist

import (
	"fmt"
	"math"

	"aqppp/internal/core"
	"aqppp/internal/engine"
	"aqppp/internal/ident"
)

// WireVersion is the protocol version both sides assert on every
// message; a mismatch is a deploy-order bug, never silently tolerated.
const WireVersion = 1

// WireRange is one compiled predicate range (inclusive bounds, as
// bits).
type WireRange struct {
	Col    string `json:"col"`
	LoBits uint64 `json:"lo_bits"`
	HiBits uint64 `json:"hi_bits"`
}

// WireQuery is a compiled engine.Query in transit. The coordinator
// plans (parses, resolves, compiles) exactly once; replicas execute
// the compiled form without re-planning.
type WireQuery struct {
	Func    string      `json:"func"`
	Col     string      `json:"col,omitempty"`
	Ranges  []WireRange `json:"ranges,omitempty"`
	GroupBy []string    `json:"group_by,omitempty"`
}

// Partial-request modes.
const (
	ModeExact     = "exact"
	ModeApprox    = "approx"
	ModeGroups    = "groups"
	ModeBootstrap = "bootstrap"
)

// PartialRequest is the body of POST /v1/partial: one stratum's share
// of a distributed query.
type PartialRequest struct {
	V     int       `json:"v"`
	Mode  string    `json:"mode"`
	Table string    `json:"table"`
	Query WireQuery `json:"query"`
	// Handle names the replica-side prepared handle for approx and
	// bootstrap modes.
	Handle string `json:"handle,omitempty"`
	// Resamples/Seed drive bootstrap mode; Seed is already
	// stride-derived for the replica's shard index.
	Resamples int    `json:"resamples,omitempty"`
	Seed      uint64 `json:"seed,omitempty"`
	// TimeoutMS is the coordinator's remaining deadline, so the
	// replica's admission gate sheds work the caller can no longer use.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// WirePartial is engine.Partial in transit.
type WirePartial struct {
	N        int64  `json:"n"`
	SumBits  uint64 `json:"sum_bits"`
	Sum2Bits uint64 `json:"sum2_bits"`
	MinBits  uint64 `json:"min_bits"`
	MaxBits  uint64 `json:"max_bits"`
}

// WireGroupPartial is one exact group's partial.
type WireGroupPartial struct {
	Key     string      `json:"key"`
	Partial WirePartial `json:"partial"`
}

// WireAnswer is core.Answer in transit: the estimate's moments as
// bits, plus the identification diagnostics the merged answer reports.
type WireAnswer struct {
	ValueBits    uint64  `json:"value_bits"`
	HwBits       uint64  `json:"hw_bits"`
	Confidence   float64 `json:"confidence"`
	SampleRows   int     `json:"sample_rows"`
	PreLo        []int   `json:"pre_lo,omitempty"`
	PreHi        []int   `json:"pre_hi,omitempty"`
	PrePhi       bool    `json:"pre_phi"`
	PreValueBits uint64  `json:"pre_value_bits"`
	Candidates   int     `json:"candidates"`
}

// WireGroupAnswer is one approximate group's answer.
type WireGroupAnswer struct {
	Key    string     `json:"key"`
	Answer WireAnswer `json:"answer"`
}

// PartialResponse is the success body of POST /v1/partial.
type PartialResponse struct {
	V     int    `json:"v"`
	Shard int    `json:"shard"`
	Mode  string `json:"mode"`
	// Scalar/Groups carry exact-mode results.
	Scalar *WirePartial       `json:"scalar,omitempty"`
	Groups []WireGroupPartial `json:"groups,omitempty"`
	// Answer/AnswerGroups carry approx- and bootstrap-mode results.
	Answer       *WireAnswer       `json:"answer,omitempty"`
	AnswerGroups []WireGroupAnswer `json:"answer_groups,omitempty"`
	ElapsedUS    int64             `json:"elapsed_us"`
}

// ShardIdentity is the slice a replica owns: its index under the
// layout, the fleet size, and the layout column's observed bounds
// (meaningful only when Rows > 0) for coordinator-side pruning.
type ShardIdentity struct {
	Index    int    `json:"index"`
	Count    int    `json:"count"`
	Strategy string `json:"strategy"`
	Column   string `json:"column"`
	Rows     int    `json:"rows"`
	LoBits   uint64 `json:"lo_bits"`
	HiBits   uint64 `json:"hi_bits"`
}

// ColumnSchema is one column of a replica's slice as the handshake
// reports it: type, slice ordinal domain, and (for strings) the full
// dictionary — slices share the source table's dictionary verbatim, so
// any replica's copy resolves literal ranks globally.
type ColumnSchema struct {
	Name   string   `json:"name"`
	Type   string   `json:"type"`
	LoBits uint64   `json:"lo_bits"`
	HiBits uint64   `json:"hi_bits"`
	Dict   []string `json:"dict,omitempty"`
}

// HandleInfo describes one prepared handle a replica serves.
type HandleInfo struct {
	Name       string  `json:"name"`
	Confidence float64 `json:"confidence"`
	SampleRows int     `json:"sample_rows"`
}

// HelloResponse is the body of GET /v1/shard: the handshake a
// coordinator runs against each peer at startup.
type HelloResponse struct {
	V       int            `json:"v"`
	Table   string         `json:"table"`
	Shard   ShardIdentity  `json:"shard"`
	Columns []ColumnSchema `json:"columns"`
	Handles []HandleInfo   `json:"handles"`
}

// LeaseRequest is the body of POST /v1/quota/lease: a replica asking
// the quota authority for a batch of tokens on behalf of one client.
type LeaseRequest struct {
	V      int    `json:"v"`
	Client string `json:"client"`
	Want   int    `json:"want"`
}

// LeaseResponse grants min(want, available) tokens; Granted == 0 means
// the client is over quota and RetryAfterMS hints when one token
// refills.
type LeaseResponse struct {
	V            int   `json:"v"`
	Granted      int   `json:"granted"`
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// wireErrorBody mirrors the server's JSON error shape structurally
// (dist cannot import internal/server — the dependency points the
// other way).
type wireErrorBody struct {
	Error struct {
		Kind         string `json:"kind"`
		Message      string `json:"message"`
		RetryAfterMS int64  `json:"retry_after_ms"`
	} `json:"error"`
}

// ToWireQuery converts a compiled query for transit.
func ToWireQuery(q engine.Query) WireQuery {
	out := WireQuery{Func: q.Func.String(), Col: q.Col, GroupBy: q.GroupBy}
	for _, r := range q.Ranges {
		out.Ranges = append(out.Ranges, WireRange{
			Col: r.Col, LoBits: math.Float64bits(r.Lo), HiBits: math.Float64bits(r.Hi),
		})
	}
	return out
}

// FromWireQuery reconstructs the compiled query on the replica side.
func FromWireQuery(w WireQuery) (engine.Query, error) {
	f, err := parseAggFunc(w.Func)
	if err != nil {
		return engine.Query{}, err
	}
	q := engine.Query{Func: f, Col: w.Col, GroupBy: w.GroupBy}
	for _, r := range w.Ranges {
		q.Ranges = append(q.Ranges, engine.Range{
			Col: r.Col, Lo: math.Float64frombits(r.LoBits), Hi: math.Float64frombits(r.HiBits),
		})
	}
	return q, nil
}

func parseAggFunc(s string) (engine.AggFunc, error) {
	for _, f := range []engine.AggFunc{engine.Sum, engine.Count, engine.Avg, engine.Var, engine.Min, engine.Max} {
		if f.String() == s {
			return f, nil
		}
	}
	return 0, fmt.Errorf("dist: unknown aggregate %q", s)
}

// ToWirePartial converts an exact partial for transit.
func ToWirePartial(p engine.Partial) WirePartial {
	return WirePartial{
		N:        p.N,
		SumBits:  math.Float64bits(p.Sum),
		Sum2Bits: math.Float64bits(p.Sum2),
		MinBits:  math.Float64bits(p.Min),
		MaxBits:  math.Float64bits(p.Max),
	}
}

// FromWirePartial reconstructs an exact partial bit-for-bit.
func FromWirePartial(w WirePartial) engine.Partial {
	return engine.Partial{
		N:    w.N,
		Sum:  math.Float64frombits(w.SumBits),
		Sum2: math.Float64frombits(w.Sum2Bits),
		Min:  math.Float64frombits(w.MinBits),
		Max:  math.Float64frombits(w.MaxBits),
	}
}

// ToWireAnswer converts an approximate answer for transit.
func ToWireAnswer(a core.Answer) WireAnswer {
	return WireAnswer{
		ValueBits:    math.Float64bits(a.Estimate.Value),
		HwBits:       math.Float64bits(a.Estimate.HalfWidth),
		Confidence:   a.Estimate.Confidence,
		SampleRows:   a.Estimate.SampleRows,
		PreLo:        a.Pre.Lo,
		PreHi:        a.Pre.Hi,
		PrePhi:       a.Pre.Phi,
		PreValueBits: math.Float64bits(a.PreValue),
		Candidates:   a.Candidates,
	}
}

// FromWireAnswer reconstructs an approximate answer bit-for-bit.
func FromWireAnswer(w WireAnswer) core.Answer {
	return core.Answer{
		Estimate: aqpEstimate(
			math.Float64frombits(w.ValueBits),
			math.Float64frombits(w.HwBits),
			w.Confidence, w.SampleRows,
		),
		Pre:        ident.Pre{Lo: w.PreLo, Hi: w.PreHi, Phi: w.PrePhi},
		PreValue:   math.Float64frombits(w.PreValueBits),
		Candidates: w.Candidates,
	}
}
