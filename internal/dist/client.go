package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"aqppp/internal/exec"
)

// Config tunes the coordinator's replica client.
type Config struct {
	// Timeout bounds each attempt against one replica (0 means no
	// per-attempt bound beyond the request's own deadline).
	Timeout time.Duration
	// Retries is how many additional attempts follow a retryable
	// failure (transport error, per-attempt timeout, replica 5xx).
	// Taxonomy rejections and sheds never retry.
	Retries int
	// Backoff is the sleep before the first retry; it doubles per
	// retry and a retry never sleeps past the request's deadline.
	Backoff time.Duration
	// Hedge, when > 0, launches a duplicate first attempt after this
	// delay and takes whichever answers first — the tail-latency
	// tradeoff of doing up to 2x the work.
	Hedge time.Duration
	// Workers bounds the coordinator's fan-out pool (<= 0 selects
	// GOMAXPROCS).
	Workers int
	// DegradedApprox opts in to answering approximate queries from
	// surviving strata when a replica is lost: the answer scales up by
	// the lost row mass, the interval widens, and the response carries
	// partial:true. Exact queries always fail closed.
	DegradedApprox bool
	// Client is the HTTP client (nil uses a default with sane
	// timeouts).
	Client *http.Client
}

// maxPartialBody bounds a partial response read (defensive; real
// responses are a few KB plus group rows).
const maxPartialBody = 16 << 20

func (c *Coordinator) httpClient() *http.Client {
	if c.cfg.Client != nil {
		return c.cfg.Client
	}
	return http.DefaultClient
}

// opForMode maps a partial mode onto the exec error-taxonomy op.
func opForMode(mode string) string {
	switch mode {
	case ModeExact:
		return "exact"
	case ModeBootstrap:
		return "bootstrap"
	default:
		return "query"
	}
}

// kindFromString maps a replica's wire kind back onto the taxonomy.
func kindFromString(s string) (exec.Kind, bool) {
	switch s {
	case "parse":
		return exec.Parse, true
	case "unknown-table", "unknown-prepared":
		return exec.UnknownTable, true
	case "unsupported":
		return exec.Unsupported, true
	case "canceled":
		return exec.Canceled, true
	case "budget-exceeded":
		return exec.BudgetExceeded, true
	case "unavailable":
		return exec.Unavailable, true
	default:
		return exec.Internal, false
	}
}

// postPartial sends one partial request to a replica with per-attempt
// timeouts, bounded exponential backoff, and (when configured) a
// hedged first attempt. Retries honor the request's remaining
// deadline: a retry whose backoff would sleep past it is abandoned and
// the last failure returned — the coordinator never burns budget the
// caller cannot use.
func (c *Coordinator) postPartial(ctx context.Context, r *replica, preq *PartialRequest) (*PartialResponse, error) {
	op := opForMode(preq.Mode)
	body, err := json.Marshal(preq)
	if err != nil {
		return nil, &exec.Error{Kind: exec.Internal, Op: op, Err: err}
	}
	backoff := c.cfg.Backoff
	if backoff <= 0 {
		backoff = 25 * time.Millisecond
	}
	attempts := 0
	var lastErr error
	for try := 0; try <= c.cfg.Retries; try++ {
		if try > 0 {
			if dl, ok := ctx.Deadline(); ok && time.Until(dl) <= backoff {
				break // the retry could not finish inside the deadline
			}
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(backoff):
			}
			backoff *= 2
			r.retries.Add(1)
		}
		attempts++
		resp, retryable, err := c.attemptHedged(ctx, r, op, body)
		if err == nil {
			r.healthy.Store(true)
			return resp, nil
		}
		lastErr = err
		if !retryable {
			var re *ReplicaError
			if errors.As(err, &re) {
				r.failures.Add(1)
				r.healthy.Store(false)
			}
			return nil, err
		}
	}
	r.failures.Add(1)
	r.healthy.Store(false)
	var re *ReplicaError
	if errors.As(lastErr, &re) {
		re.Attempts = attempts
		return nil, lastErr
	}
	return nil, lastErr
}

// attemptHedged runs one attempt, racing a duplicate launched after
// the hedge delay when configured. The first success wins and the
// loser's context is canceled; if both fail, the last failure is
// returned.
func (c *Coordinator) attemptHedged(ctx context.Context, r *replica, op string, body []byte) (*PartialResponse, bool, error) {
	if c.cfg.Hedge <= 0 {
		return c.attempt(ctx, r, op, body)
	}
	type result struct {
		resp      *PartialResponse
		retryable bool
		err       error
	}
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan result, 2)
	launch := func() {
		go func() {
			resp, retryable, err := c.attempt(actx, r, op, body)
			ch <- result{resp, retryable, err}
		}()
	}
	launch()
	launched, got := 1, 0
	timer := time.NewTimer(c.cfg.Hedge)
	defer timer.Stop()
	for {
		select {
		case <-timer.C:
			if launched < 2 {
				r.hedges.Add(1)
				launch()
				launched++
			}
		case out := <-ch:
			got++
			if out.err == nil || got == launched {
				return out.resp, out.retryable, out.err
			}
			// One attempt failed but the hedge is still in flight:
			// wait for it rather than retrying from scratch.
		}
	}
}

// attempt is one POST /v1/partial round trip. The bool reports whether
// the failure is retryable.
func (c *Coordinator) attempt(ctx context.Context, r *replica, op string, body []byte) (*PartialResponse, bool, error) {
	actx := ctx
	cancel := context.CancelFunc(func() {})
	if c.cfg.Timeout > 0 {
		actx, cancel = context.WithTimeout(ctx, c.cfg.Timeout)
	}
	defer cancel()
	r.requests.Add(1)
	req, err := http.NewRequestWithContext(actx, http.MethodPost, r.url+"/v1/partial", bytes.NewReader(body))
	if err != nil {
		return nil, false, &exec.Error{Kind: exec.Internal, Op: op, Err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		if ctx.Err() != nil {
			// The caller's deadline or cancellation, not the replica's
			// fault: surface the raw context error so exec classifies
			// it as Canceled/BudgetExceeded.
			return nil, false, ctx.Err()
		}
		return nil, true, unavailable(op, &ReplicaError{Replica: r.url, Shard: r.ident.Index, Attempts: 1, Err: err})
	}
	defer func() { _ = resp.Body.Close() }()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxPartialBody))
	if err != nil {
		if ctx.Err() != nil {
			return nil, false, ctx.Err()
		}
		return nil, true, unavailable(op, &ReplicaError{Replica: r.url, Shard: r.ident.Index, Attempts: 1, Err: err})
	}
	if resp.StatusCode == http.StatusOK {
		var pr PartialResponse
		if err := json.Unmarshal(data, &pr); err != nil {
			return nil, true, unavailable(op, &ReplicaError{Replica: r.url, Shard: r.ident.Index, Attempts: 1,
				Err: fmt.Errorf("malformed partial response: %w", err)})
		}
		if pr.V != WireVersion {
			return nil, false, &exec.Error{Kind: exec.Internal, Op: op,
				Err: fmt.Errorf("replica %s speaks wire v%d, coordinator v%d", r.url, pr.V, WireVersion)}
		}
		return &pr, false, nil
	}
	var eb wireErrorBody
	_ = json.Unmarshal(data, &eb)
	if resp.StatusCode == http.StatusTooManyRequests {
		// The replica shed the request (admission gate or quota). Not
		// retryable within this query — the backoff hint is for the
		// client — and the hint must survive to the coordinator's own
		// response instead of flattening into a 500.
		r.shed.Add(1)
		ra := time.Duration(eb.Error.RetryAfterMS) * time.Millisecond
		if ra <= 0 {
			ra = retryAfterHeader(resp)
		}
		return nil, false, unavailable(op, &ReplicaError{
			Replica: r.url, Shard: r.ident.Index, Attempts: 1, RetryAfter: ra,
			Err: fmt.Errorf("replica shed the request: %s", eb.Error.Message),
		})
	}
	if kind, ok := kindFromString(eb.Error.Kind); ok {
		cause := errors.New(eb.Error.Message)
		switch kind {
		case exec.Parse, exec.UnknownTable, exec.Unsupported:
			// The request itself is bad; every replica would reject it.
			return nil, false, &exec.Error{Kind: kind, Op: op, Err: cause}
		default:
			// The replica ran out of its share of the deadline or
			// unwound — the stratum is lost for this query, which the
			// degrade policy may tolerate. Retrying cannot help inside
			// the same deadline.
			return nil, false, unavailable(op, &ReplicaError{Replica: r.url, Shard: r.ident.Index, Attempts: 1, Err: cause})
		}
	}
	// 5xx and anything unrecognized: retryable replica failure.
	return nil, true, unavailable(op, &ReplicaError{
		Replica: r.url, Shard: r.ident.Index, Attempts: 1,
		Err: fmt.Errorf("replica status %d: %s", resp.StatusCode, eb.Error.Message),
	})
}

// retryAfterHeader parses a whole-seconds Retry-After header.
func retryAfterHeader(resp *http.Response) time.Duration {
	var secs int64
	if _, err := fmt.Sscanf(resp.Header.Get("Retry-After"), "%d", &secs); err == nil && secs > 0 {
		return time.Duration(secs) * time.Second
	}
	return 0
}

// timeoutMSFrom renders a context deadline as the wire timeout hint.
func timeoutMSFrom(ctx context.Context) int64 {
	if dl, ok := ctx.Deadline(); ok {
		ms := time.Until(dl).Milliseconds()
		if ms < 1 {
			ms = 1
		}
		return ms
	}
	return 0
}
