package dist

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"aqppp/internal/core"
	"aqppp/internal/engine"
	"aqppp/internal/exec"
	"aqppp/internal/shard"
	"aqppp/internal/stats"
)

// Latency histogram domain: log10(µs) over [1µs, 1s), 24 buckets —
// the serving layer's scheme, so per-replica histograms line up with
// request histograms in /metrics.
const (
	latLogMin  = 0.0
	latLogMax  = 6.0
	latBuckets = 24
)

// replica is the coordinator's view of one peer: its identity from the
// handshake plus per-replica traffic counters.
type replica struct {
	url   string
	ident ShardIdentity

	requests atomic.Uint64
	retries  atomic.Uint64
	failures atomic.Uint64
	hedges   atomic.Uint64
	shed     atomic.Uint64
	healthy  atomic.Bool

	mu      sync.Mutex
	sumUS   float64
	latency *stats.Histogram
}

func (r *replica) observe(d time.Duration) {
	us := d.Seconds() * 1e6
	if us < 1 {
		us = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sumUS += us
	r.latency.Add(math.Log10(us))
}

// Coordinator implements the shard fan-out contract over the network:
// it owns the fleet topology discovered by Dial, builds shard.Groups
// whose executors are remote replicas, and implements exec.Distributed
// so plans route to it exactly like they route to in-process shards.
// Because the Group — pruning, fan-out, algebraic exact merge,
// stratified CI merge — is byte-for-byte the code the in-process path
// runs, distributed answers are bit-identical (exact) and CI-identical
// (approx) to their in-process sharded counterparts.
type Coordinator struct {
	cfg      Config
	table    string
	layout   shard.Layout
	schema   *engine.Table
	replicas []*replica // ascending by shard index, one per shard
	handles  []HandleInfo

	// topoGen stamps the topology into plan cache keys; membership or
	// layout changes bump it, killing every cached answer computed
	// under the old fleet.
	topoGen  atomic.Uint64
	pruned   atomic.Uint64
	degraded atomic.Uint64
}

// Table reports the logical (source) table name the fleet serves.
func (c *Coordinator) Table() string { return c.table }

// SchemaTable returns the zero-row schema table Dial assembled from
// the fleet: full column set with dictionaries and unioned ordinal
// domains, so the SQL compiler resolves unbounded predicate sides and
// string literals exactly as it would against the resident table.
func (c *Coordinator) SchemaTable() *engine.Table { return c.schema }

// Handles lists the prepared handles every replica serves.
func (c *Coordinator) Handles() []HandleInfo { return c.handles }

// Layout reports the fleet's shard layout.
func (c *Coordinator) Layout() shard.Layout { return c.layout }

// Signature implements exec.Distributed.
func (c *Coordinator) Signature() string {
	return fmt.Sprintf("%s@t%d", c.layout.Signature(), c.topoGen.Load())
}

func (c *Coordinator) confidenceFor(handle string) float64 {
	for _, h := range c.handles {
		if h.Name == handle {
			return h.Confidence
		}
	}
	return 0.95
}

// group builds the shared fan-out/merge engine over the fleet.
func (c *Coordinator) group(handle string) *shard.Group {
	execs := make([]shard.Executor, len(c.replicas))
	for i, r := range c.replicas {
		execs[i] = &remoteExec{c: c, r: r, handle: handle}
	}
	g := &shard.Group{
		Layout:     c.layout,
		Confidence: c.confidenceFor(handle),
		Execs:      execs,
		Workers:    c.cfg.Workers,
		Observe:    func(k int, d time.Duration) { c.replicas[k].observe(d) },
		OnPrune:    func(int) { c.pruned.Add(1) },
	}
	if c.cfg.DegradedApprox {
		g.Degrade = func(err error) bool { return exec.KindOf(err) == exec.Unavailable }
	}
	return g
}

// Exact implements exec.Distributed.
func (c *Coordinator) Exact(ctx context.Context, q engine.Query) (engine.Result, error) {
	return c.group("").Exact(ctx, q)
}

// Approx implements exec.Distributed.
func (c *Coordinator) Approx(ctx context.Context, handle string, q engine.Query) (core.Answer, bool, error) {
	a, deg, err := c.group(handle).Answer(ctx, q)
	c.noteDegraded(deg)
	return a, deg != nil, err
}

// ApproxGroups implements exec.Distributed.
func (c *Coordinator) ApproxGroups(ctx context.Context, handle string, q engine.Query) ([]core.GroupAnswer, bool, error) {
	groups, deg, err := c.group(handle).AnswerGroups(ctx, q)
	c.noteDegraded(deg)
	return groups, deg != nil, err
}

// Bootstrap implements exec.Distributed.
func (c *Coordinator) Bootstrap(ctx context.Context, handle string, q engine.Query, resamples int, seed uint64) (core.Answer, bool, error) {
	a, deg, err := c.group(handle).AnswerBootstrap(ctx, q, resamples, seed)
	c.noteDegraded(deg)
	return a, deg != nil, err
}

func (c *Coordinator) noteDegraded(deg *shard.Degradation) {
	if deg != nil {
		c.degraded.Add(1)
	}
}

// remoteExec adapts one replica to shard.Executor: each method is one
// partial request over the wire, decoded bit-for-bit.
type remoteExec struct {
	c      *Coordinator
	r      *replica
	handle string
}

// Info implements shard.Executor.
func (e *remoteExec) Info() shard.ExecutorInfo {
	return shard.ExecutorInfo{
		Index:  e.r.ident.Index,
		Rows:   e.r.ident.Rows,
		Lo:     math.Float64frombits(e.r.ident.LoBits),
		Hi:     math.Float64frombits(e.r.ident.HiBits),
		Approx: e.handle != "",
	}
}

func (e *remoteExec) request(ctx context.Context, mode string, q engine.Query) *PartialRequest {
	return &PartialRequest{
		V:         WireVersion,
		Mode:      mode,
		Table:     e.c.table,
		Query:     ToWireQuery(q),
		Handle:    e.handle,
		TimeoutMS: timeoutMSFrom(ctx),
	}
}

// ExactPartial implements shard.Executor.
func (e *remoteExec) ExactPartial(ctx context.Context, q engine.Query) (engine.PartialResult, error) {
	pr, err := e.c.postPartial(ctx, e.r, e.request(ctx, ModeExact, q))
	if err != nil {
		return engine.PartialResult{}, err
	}
	var out engine.PartialResult
	if pr.Scalar != nil {
		out.Scalar = FromWirePartial(*pr.Scalar)
	}
	for _, g := range pr.Groups {
		out.Groups = append(out.Groups, engine.GroupPartial{Key: g.Key, Partial: FromWirePartial(g.Partial)})
	}
	return out, nil
}

// ApproxAnswer implements shard.Executor.
func (e *remoteExec) ApproxAnswer(ctx context.Context, q engine.Query) (core.Answer, error) {
	pr, err := e.c.postPartial(ctx, e.r, e.request(ctx, ModeApprox, q))
	if err != nil {
		return core.Answer{}, err
	}
	if pr.Answer == nil {
		return core.Answer{}, &exec.Error{Kind: exec.Internal, Op: "query",
			Err: fmt.Errorf("replica %s returned no answer for approx partial", e.r.url)}
	}
	return FromWireAnswer(*pr.Answer), nil
}

// ApproxGroups implements shard.Executor.
func (e *remoteExec) ApproxGroups(ctx context.Context, q engine.Query) ([]core.GroupAnswer, error) {
	pr, err := e.c.postPartial(ctx, e.r, e.request(ctx, ModeGroups, q))
	if err != nil {
		return nil, err
	}
	out := make([]core.GroupAnswer, 0, len(pr.AnswerGroups))
	for _, g := range pr.AnswerGroups {
		out = append(out, core.GroupAnswer{Key: g.Key, Answer: FromWireAnswer(g.Answer)})
	}
	return out, nil
}

// ApproxBootstrap implements shard.Executor.
func (e *remoteExec) ApproxBootstrap(ctx context.Context, q engine.Query, resamples int, seed uint64) (core.Answer, error) {
	req := e.request(ctx, ModeBootstrap, q)
	req.Resamples = resamples
	req.Seed = seed
	pr, err := e.c.postPartial(ctx, e.r, req)
	if err != nil {
		return core.Answer{}, err
	}
	if pr.Answer == nil {
		return core.Answer{}, &exec.Error{Kind: exec.Internal, Op: "bootstrap",
			Err: fmt.Errorf("replica %s returned no answer for bootstrap partial", e.r.url)}
	}
	return FromWireAnswer(*pr.Answer), nil
}

// ReplicaSnapshot is one replica's observable state for /statusz and
// /metrics.
type ReplicaSnapshot struct {
	URL      string `json:"url"`
	Index    int    `json:"index"`
	Rows     int    `json:"rows"`
	Healthy  bool   `json:"healthy"`
	Requests uint64 `json:"requests"`
	Retries  uint64 `json:"retries"`
	Failures uint64 `json:"failures"`
	Hedges   uint64 `json:"hedges"`
	Shed     uint64 `json:"shed"`
	// Latency holds the replica's request-latency bucket counts
	// (log10-µs, the serving layer's scheme); LatencySumUS the total.
	Latency      []int64 `json:"-"`
	LatencySumUS float64 `json:"-"`
}

// Snapshot is the fleet's point-in-time topology and traffic view.
type Snapshot struct {
	Table    string            `json:"table"`
	Layout   string            `json:"layout"`
	TopoGen  uint64            `json:"topology_generation"`
	Pruned   uint64            `json:"pruned"`
	Degraded uint64            `json:"degraded"`
	Handles  []HandleInfo      `json:"handles,omitempty"`
	Replicas []ReplicaSnapshot `json:"replicas"`
}

// Snapshot captures the fleet state.
func (c *Coordinator) Snapshot() Snapshot {
	snap := Snapshot{
		Table:    c.table,
		Layout:   c.layout.Signature(),
		TopoGen:  c.topoGen.Load(),
		Pruned:   c.pruned.Load(),
		Degraded: c.degraded.Load(),
		Handles:  c.handles,
	}
	for _, r := range c.replicas {
		r.mu.Lock()
		counts := append([]int64(nil), r.latency.Counts...)
		sumUS := r.sumUS
		r.mu.Unlock()
		snap.Replicas = append(snap.Replicas, ReplicaSnapshot{
			URL: r.url, Index: r.ident.Index, Rows: r.ident.Rows,
			Healthy:  r.healthy.Load(),
			Requests: r.requests.Load(), Retries: r.retries.Load(),
			Failures: r.failures.Load(), Hedges: r.hedges.Load(),
			Shed: r.shed.Load(), Latency: counts, LatencySumUS: sumUS,
		})
	}
	return snap
}
