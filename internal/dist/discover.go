package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"time"

	"aqppp/internal/engine"
	"aqppp/internal/shard"
	"aqppp/internal/stats"
)

// dialRetryEvery paces handshake retries while a peer is still coming
// up; Dial keeps trying each unreachable peer until ctx expires.
const dialRetryEvery = 100 * time.Millisecond

// Dial handshakes with every peer, validates that together they form
// exactly one consistent fleet, and assembles the Coordinator: replicas
// sorted by shard index, the zero-row schema table (column types and
// dictionaries from the fleet, ordinal domains unioned across slices),
// and the prepared handles every replica serves. Peers that are not up
// yet are retried until ctx expires — replica and coordinator processes
// start concurrently.
func Dial(ctx context.Context, peers []string, cfg Config) (*Coordinator, error) {
	if len(peers) == 0 {
		return nil, fmt.Errorf("dist: no peers to dial")
	}
	client := cfg.Client
	if client == nil {
		client = http.DefaultClient
	}
	hellos := make([]HelloResponse, len(peers))
	for i, peer := range peers {
		h, err := helloRetry(ctx, client, peer)
		if err != nil {
			return nil, fmt.Errorf("dist: handshake with %s: %w", peer, err)
		}
		hellos[i] = h
	}
	return assemble(peers, hellos, cfg)
}

// helloRetry fetches one peer's handshake, retrying while it is
// unreachable or still loading.
func helloRetry(ctx context.Context, client *http.Client, peer string) (HelloResponse, error) {
	var lastErr error
	for {
		h, err := helloOnce(ctx, client, peer)
		if err == nil {
			return h, nil
		}
		lastErr = err
		select {
		case <-ctx.Done():
			return HelloResponse{}, fmt.Errorf("%w (last attempt: %v)", ctx.Err(), lastErr)
		case <-time.After(dialRetryEvery):
		}
	}
}

func helloOnce(ctx context.Context, client *http.Client, peer string) (HelloResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/v1/shard", nil)
	if err != nil {
		return HelloResponse{}, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return HelloResponse{}, err
	}
	defer func() { _ = resp.Body.Close() }()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxPartialBody))
	if err != nil {
		return HelloResponse{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return HelloResponse{}, fmt.Errorf("status %d: %s", resp.StatusCode, data)
	}
	var h HelloResponse
	if err := json.Unmarshal(data, &h); err != nil {
		return HelloResponse{}, fmt.Errorf("malformed handshake: %w", err)
	}
	if h.V != WireVersion {
		return HelloResponse{}, fmt.Errorf("peer speaks wire v%d, coordinator v%d", h.V, WireVersion)
	}
	return h, nil
}

// assemble validates the fleet and builds the Coordinator.
func assemble(peers []string, hellos []HelloResponse, cfg Config) (*Coordinator, error) {
	first := hellos[0]
	strategy, err := parseStrategy(first.Shard.Strategy)
	if err != nil {
		return nil, err
	}
	layout := shard.Layout{Strategy: strategy, Column: first.Shard.Column, N: first.Shard.Count}
	if layout.N != len(peers) {
		return nil, fmt.Errorf("dist: fleet declares %d shards but %d peers were dialed", layout.N, len(peers))
	}
	seen := make(map[int]string, len(peers))
	replicas := make([]*replica, 0, len(peers))
	for i, h := range hellos {
		if h.Table != first.Table {
			return nil, fmt.Errorf("dist: peer %s serves table %q, fleet serves %q", peers[i], h.Table, first.Table)
		}
		if h.Shard.Strategy != first.Shard.Strategy || h.Shard.Column != first.Shard.Column || h.Shard.Count != first.Shard.Count {
			return nil, fmt.Errorf("dist: peer %s declares layout %s:%s:%d, fleet is %s",
				peers[i], h.Shard.Strategy, h.Shard.Column, h.Shard.Count, layout.Signature())
		}
		if prev, dup := seen[h.Shard.Index]; dup {
			return nil, fmt.Errorf("dist: peers %s and %s both claim shard %d", prev, peers[i], h.Shard.Index)
		}
		if h.Shard.Index < 0 || h.Shard.Index >= layout.N {
			return nil, fmt.Errorf("dist: peer %s claims shard %d outside layout of %d", peers[i], h.Shard.Index, layout.N)
		}
		seen[h.Shard.Index] = peers[i]
		r := &replica{url: peers[i], ident: h.Shard,
			latency: stats.NewHistogram(latLogMin, latLogMax, latBuckets)}
		r.healthy.Store(true)
		replicas = append(replicas, r)
	}
	sort.Slice(replicas, func(i, j int) bool { return replicas[i].ident.Index < replicas[j].ident.Index })

	schema, err := schemaTable(first.Table, hellos)
	if err != nil {
		return nil, err
	}
	handles, err := sharedHandles(hellos)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:      cfg,
		table:    first.Table,
		layout:   layout,
		schema:   schema,
		replicas: replicas,
		handles:  handles,
	}
	c.topoGen.Store(1)
	return c, nil
}

func parseStrategy(s string) (shard.Strategy, error) {
	switch s {
	case shard.ByRange.String():
		return shard.ByRange, nil
	case shard.ByHash.String():
		return shard.ByHash, nil
	default:
		return 0, fmt.Errorf("dist: unknown shard strategy %q", s)
	}
}

func parseColType(s string) (engine.ColType, error) {
	for _, t := range []engine.ColType{engine.Int64, engine.Float64, engine.String} {
		if t.String() == s {
			return t, nil
		}
	}
	return 0, fmt.Errorf("dist: unknown column type %q", s)
}

// schemaTable builds the coordinator's zero-row planning table: one
// schema column per fleet column, ordinal domains unioned across slices
// (empty slices report an inverted domain and are skipped), and string
// dictionaries taken from the first peer — every slice shares the
// source table's dictionary verbatim, so any copy is globally correct,
// but the lengths are still cross-checked to catch a mixed fleet.
func schemaTable(table string, hellos []HelloResponse) (*engine.Table, error) {
	first := hellos[0]
	cols := make([]*engine.Column, 0, len(first.Columns))
	for ci, cs := range first.Columns {
		typ, err := parseColType(cs.Type)
		if err != nil {
			return nil, fmt.Errorf("dist: column %q: %w", cs.Name, err)
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for hi2, h := range hellos {
			if ci >= len(h.Columns) || h.Columns[ci].Name != cs.Name || h.Columns[ci].Type != cs.Type {
				return nil, fmt.Errorf("dist: peers disagree on column %d (%q)", ci, cs.Name)
			}
			if len(h.Columns[ci].Dict) != len(cs.Dict) {
				return nil, fmt.Errorf("dist: peers %d and 0 disagree on dictionary of %q", hi2, cs.Name)
			}
			clo := math.Float64frombits(h.Columns[ci].LoBits)
			chi := math.Float64frombits(h.Columns[ci].HiBits)
			if chi < clo {
				continue // empty slice: no observed domain
			}
			lo = math.Min(lo, clo)
			hi = math.Max(hi, chi)
		}
		if hi < lo {
			// Every slice is empty: keep the canonical empty domain.
			lo, hi = 0, -1
		}
		cols = append(cols, engine.NewSchemaColumn(cs.Name, typ, cs.Dict, lo, hi))
	}
	return engine.NewTable(table, cols...)
}

// sharedHandles intersects the peers' prepared handles: a handle is
// usable only when every replica serves it at the same confidence. The
// reported sample size is the fleet total.
func sharedHandles(hellos []HelloResponse) ([]HandleInfo, error) {
	var out []HandleInfo
	for _, h := range hellos[0].Handles {
		total := h.SampleRows
		everywhere := true
		for _, other := range hellos[1:] {
			found := false
			for _, oh := range other.Handles {
				if oh.Name == h.Name {
					if math.Float64bits(oh.Confidence) != math.Float64bits(h.Confidence) {
						return nil, fmt.Errorf("dist: handle %q prepared at confidence %g and %g across the fleet",
							h.Name, h.Confidence, oh.Confidence)
					}
					total += oh.SampleRows
					found = true
					break
				}
			}
			if !found {
				everywhere = false
				break
			}
		}
		if everywhere {
			out = append(out, HandleInfo{Name: h.Name, Confidence: h.Confidence, SampleRows: total})
		}
	}
	return out, nil
}
