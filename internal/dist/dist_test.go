// Package dist_test drives the distributed subsystem end to end over
// real loopback listeners: replica servers built from table slices, a
// coordinator dialed against them, and the in-process sharded path as
// the equivalence oracle. It lives outside package dist so it can
// import internal/server (which imports dist).
package dist_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"aqppp"
	"aqppp/internal/dist"
	"aqppp/internal/engine"
	"aqppp/internal/server"
	"aqppp/internal/shard"
	"aqppp/internal/stats"
)

const (
	fleetRows   = 4000
	fleetSeed   = 11
	fleetBudget = 60
	fleetRate   = 0.2
	fleetHandle = "h"
)

// fleetTable mirrors the root demo fixture: an integer key, a
// correlated float measure, and a low-cardinality tier.
func fleetTable(n int, seed uint64) *engine.Table {
	r := stats.NewRNG(seed)
	k := make([]int64, n)
	v := make([]float64, n)
	g := make([]string, n)
	for i := 0; i < n; i++ {
		k[i] = int64(r.Intn(500) + 1)
		v[i] = 50 + 0.2*float64(k[i]) + 8*r.NormFloat64()
		if i%5 == 0 {
			g[i] = "gold"
		} else {
			g[i] = "silver"
		}
	}
	return engine.MustNewTable("demo",
		engine.NewIntColumn("k", k),
		engine.NewFloatColumn("v", v),
		engine.NewStringColumn("tier", g),
	)
}

// startServer runs srv on a loopback listener and returns its base URL.
func startServer(t *testing.T, srv *server.Server) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		if err := <-done; err != nil {
			t.Errorf("Serve returned %v", err)
		}
	})
	return "http://" + l.Addr().String()
}

// startReplica slices shard index out of tbl, prepares the slice with
// the per-shard derived seed and split budget (exactly what the
// in-process sharded Prepare does per stratum), and serves it as a
// replica.
func startReplica(t *testing.T, tbl *engine.Table, layout shard.Layout, index int) (string, *server.Server) {
	t.Helper()
	slice, identity, err := dist.SliceTable(tbl, layout, index)
	if err != nil {
		t.Fatal(err)
	}
	db := aqppp.NewDB()
	if err := db.Register(slice); err != nil {
		t.Fatal(err)
	}
	prep, err := db.Prepare(aqppp.PrepareOptions{
		Table: slice.Name, Aggregate: "v", Dimensions: []string{"k"},
		SampleRate: fleetRate,
		CellBudget: shard.SplitBudget(fleetBudget, layout.N),
		Seed:       shard.DeriveSeed(fleetSeed, index),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(db, server.Config{
		Replica: &server.ReplicaRole{Table: slice.Name, Ident: identity},
	})
	if err := srv.RegisterPrepared(fleetHandle, prep); err != nil {
		t.Fatal(err)
	}
	return startServer(t, srv), srv
}

// startFleet builds an n-replica fleet over tbl and dials it.
func startFleet(t *testing.T, tbl *engine.Table, n int, cfg dist.Config) (*dist.Coordinator, []*server.Server) {
	t.Helper()
	layout := shard.Layout{Strategy: shard.ByRange, Column: "k", N: n}
	urls := make([]string, n)
	srvs := make([]*server.Server, n)
	for i := 0; i < n; i++ {
		urls[i], srvs[i] = startReplica(t, tbl, layout, i)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	coord, err := dist.Dial(ctx, urls, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return coord, srvs
}

// coordDB registers the fleet behind a DB and resolves its shared
// prepared handle.
func coordDB(t *testing.T, coord *dist.Coordinator) (*aqppp.DB, *aqppp.Prepared) {
	t.Helper()
	db := aqppp.NewDB()
	if err := db.RegisterDistributed(coord.SchemaTable(), coord); err != nil {
		t.Fatal(err)
	}
	hs := coord.Handles()
	if len(hs) != 1 || hs[0].Name != fleetHandle {
		t.Fatalf("fleet handles = %+v, want exactly %q", hs, fleetHandle)
	}
	prep, err := db.DistPrepared(coord.Table(), hs[0].Name, hs[0].Confidence, hs[0].SampleRows)
	if err != nil {
		t.Fatal(err)
	}
	return db, prep
}

// oracle builds the in-process sharded DB the distributed answers must
// match.
func oracle(t *testing.T, tbl *engine.Table, n int) (*aqppp.DB, *aqppp.Prepared) {
	t.Helper()
	db := aqppp.NewDB()
	if err := db.RegisterSharded(tbl, aqppp.ShardOptions{Column: "k", Shards: n}); err != nil {
		t.Fatal(err)
	}
	prep, err := db.Prepare(aqppp.PrepareOptions{
		Table: tbl.Name, Aggregate: "v", Dimensions: []string{"k"},
		SampleRate: fleetRate, CellBudget: fleetBudget, Seed: fleetSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db, prep
}

// TestDistEquivalence is the randomized acceptance suite: every answer
// the coordinator produces over the network must match the in-process
// sharded oracle — exact answers bit-identically for integer
// aggregates and to 1e-12 for float ones, approximate answers
// CI-identically (value, half-width, and confidence all agree).
func TestDistEquivalence(t *testing.T) {
	tbl := fleetTable(fleetRows, 7)
	coord, _ := startFleet(t, tbl, 2, dist.Config{Timeout: 10 * time.Second})
	ddb, dprep := coordDB(t, coord)
	odb, oprep := oracle(t, tbl, 2)

	r := stats.NewRNG(99)
	aggs := []string{"SUM(v)", "COUNT(*)", "AVG(v)", "MIN(v)", "MAX(v)"}
	for i := 0; i < 24; i++ {
		lo := r.Intn(480) + 1
		hi := lo + r.Intn(500-lo) + 1
		agg := aggs[r.Intn(len(aggs))]
		stmt := fmt.Sprintf("SELECT %s FROM demo WHERE k BETWEEN %d AND %d", agg, lo, hi)
		want, err := odb.Exact(stmt)
		if err != nil {
			t.Fatalf("%s: oracle: %v", stmt, err)
		}
		got, err := ddb.Exact(stmt)
		if err != nil {
			t.Fatalf("%s: distributed: %v", stmt, err)
		}
		if strings.HasPrefix(agg, "COUNT") {
			if !stats.ExactEqual(got.Value, want.Value) {
				t.Errorf("%s: distributed %v != oracle %v", stmt, got.Value, want.Value)
			}
		} else if !stats.ApproxEqual(got.Value, want.Value, 1e-12) {
			t.Errorf("%s: distributed %v vs oracle %v", stmt, got.Value, want.Value)
		}
	}

	// Approximate scalars through the shared handle.
	approxAggs := []string{"SUM(v)", "COUNT(*)", "AVG(v)"}
	for i := 0; i < 24; i++ {
		lo := r.Intn(480) + 1
		hi := lo + r.Intn(500-lo) + 1
		agg := approxAggs[r.Intn(len(approxAggs))]
		stmt := fmt.Sprintf("SELECT %s FROM demo WHERE k BETWEEN %d AND %d", agg, lo, hi)
		want, err := oprep.Query(stmt)
		if err != nil {
			t.Fatalf("%s: oracle approx: %v", stmt, err)
		}
		got, err := dprep.Query(stmt)
		if err != nil {
			t.Fatalf("%s: distributed approx: %v", stmt, err)
		}
		if !stats.ApproxEqual(got.Value, want.Value, 1e-12) ||
			!stats.ApproxEqual(got.HalfWidth, want.HalfWidth, 1e-12) {
			t.Errorf("%s: distributed (%v ± %v) vs oracle (%v ± %v)",
				stmt, got.Value, got.HalfWidth, want.Value, want.HalfWidth)
		}
		if math.Float64bits(got.Confidence) != math.Float64bits(want.Confidence) {
			t.Errorf("%s: confidence %v != %v", stmt, got.Confidence, want.Confidence)
		}
		if got.Partial {
			t.Errorf("%s: healthy fleet answered partial", stmt)
		}
	}

	// Exact and approximate GROUP BY.
	gstmt := "SELECT SUM(v) FROM demo WHERE k BETWEEN 20 AND 470 GROUP BY tier"
	wantG, err := odb.Exact(gstmt)
	if err != nil {
		t.Fatal(err)
	}
	gotG, err := ddb.Exact(gstmt)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotG.Groups) != len(wantG.Groups) {
		t.Fatalf("exact groups: %d vs %d", len(gotG.Groups), len(wantG.Groups))
	}
	for i := range wantG.Groups {
		if gotG.Groups[i].Key != wantG.Groups[i].Key ||
			!stats.ApproxEqual(gotG.Groups[i].Value, wantG.Groups[i].Value, 1e-12) {
			t.Errorf("exact group %d: %+v vs %+v", i, gotG.Groups[i], wantG.Groups[i])
		}
	}
	wantAG, err := oprep.Query(gstmt)
	if err != nil {
		t.Fatal(err)
	}
	gotAG, err := dprep.Query(gstmt)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotAG.Groups) != len(wantAG.Groups) {
		t.Fatalf("approx groups: %d vs %d", len(gotAG.Groups), len(wantAG.Groups))
	}
	for i := range wantAG.Groups {
		w, g := wantAG.Groups[i], gotAG.Groups[i]
		if g.Key != w.Key || !stats.ApproxEqual(g.Value, w.Value, 1e-12) ||
			!stats.ApproxEqual(g.HalfWidth, w.HalfWidth, 1e-12) {
			t.Errorf("approx group %d: %+v vs %+v", i, g, w)
		}
	}

	// Bootstrap intervals: per-replica streams seeded exactly like the
	// in-process per-shard streams, so the merged CI matches.
	bstmt := "SELECT SUM(v) FROM demo WHERE k BETWEEN 40 AND 460"
	wantB, err := oprep.QueryBootstrap(bstmt, 200)
	if err != nil {
		t.Fatal(err)
	}
	gotB, err := dprep.QueryBootstrap(bstmt, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.ApproxEqual(gotB.Value, wantB.Value, 1e-12) ||
		!stats.ApproxEqual(gotB.HalfWidth, wantB.HalfWidth, 1e-12) {
		t.Errorf("bootstrap: distributed (%v ± %v) vs oracle (%v ± %v)",
			gotB.Value, gotB.HalfWidth, wantB.Value, wantB.HalfWidth)
	}
}

// TestDistReplicaLossFailsClosed kills one replica mid-stream: exact
// and approximate queries needing its stratum must fail with the typed
// Unavailable kind, never a silent wrong answer.
func TestDistReplicaLossFailsClosed(t *testing.T) {
	tbl := fleetTable(fleetRows, 7)
	coord, srvs := startFleet(t, tbl, 2, dist.Config{Timeout: 2 * time.Second, Retries: 1, Backoff: 10 * time.Millisecond})
	ddb, dprep := coordDB(t, coord)

	stmt := "SELECT SUM(v) FROM demo" // full range: no shard can be pruned
	if _, err := ddb.Exact(stmt); err != nil {
		t.Fatalf("healthy fleet: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srvs[1].Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	if _, err := ddb.Exact(stmt); aqppp.ErrorKindOf(err) != aqppp.ErrUnavailable {
		t.Fatalf("exact after replica loss: err = %v, want kind %v", err, aqppp.ErrUnavailable)
	}
	if _, err := dprep.Query(stmt); aqppp.ErrorKindOf(err) != aqppp.ErrUnavailable {
		t.Fatalf("approx after replica loss: err = %v, want kind %v", err, aqppp.ErrUnavailable)
	}
}

// TestDistDegradedApprox opts in to the degraded policy: after a
// replica is lost, approximate queries answer from the surviving
// stratum with a widened interval and Partial set, while exact queries
// still fail closed.
func TestDistDegradedApprox(t *testing.T) {
	tbl := fleetTable(fleetRows, 7)
	coord, srvs := startFleet(t, tbl, 2, dist.Config{
		Timeout: 2 * time.Second, Retries: 0, DegradedApprox: true,
	})
	ddb, dprep := coordDB(t, coord)

	stmt := "SELECT SUM(v) FROM demo"
	healthy, err := dprep.Query(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if healthy.Partial {
		t.Fatal("healthy fleet answered partial")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srvs[0].Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	deg, err := dprep.Query(stmt)
	if err != nil {
		t.Fatalf("degraded query failed: %v", err)
	}
	if !deg.Partial {
		t.Error("degraded answer is not marked Partial")
	}
	if deg.HalfWidth <= healthy.HalfWidth {
		t.Errorf("degraded half-width %v not wider than healthy %v", deg.HalfWidth, healthy.HalfWidth)
	}
	// The extrapolated value stays in the right ballpark (the survivors
	// scale up by the lost row mass).
	if deg.Value <= 0 || math.Abs(deg.Value-healthy.Value) > 0.5*math.Abs(healthy.Value) {
		t.Errorf("degraded value %v too far from healthy %v", deg.Value, healthy.Value)
	}
	// Exact never degrades.
	if _, err := ddb.Exact(stmt); aqppp.ErrorKindOf(err) != aqppp.ErrUnavailable {
		t.Fatalf("exact under degraded policy: err = %v, want kind %v", err, aqppp.ErrUnavailable)
	}
	if coord.Snapshot().Degraded == 0 {
		t.Error("degraded counter did not advance")
	}
}

// fakeReplica serves a valid single-shard handshake but answers
// /v1/partial with the given handler — the knob for failure-injection
// tests.
func fakeReplica(t *testing.T, tbl *engine.Table, partial http.HandlerFunc) *httptest.Server {
	t.Helper()
	layout := shard.Layout{Strategy: shard.ByRange, Column: "k", N: 1}
	slice, identity, err := dist.SliceTable(tbl, layout, 0)
	if err != nil {
		t.Fatal(err)
	}
	hello := dist.HelloFor(slice, identity, []dist.HandleInfo{
		{Name: fleetHandle, Confidence: 0.95, SampleRows: 100},
	})
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/shard", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(hello)
	})
	mux.HandleFunc("POST /v1/partial", partial)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func dialOne(t *testing.T, url string, cfg dist.Config) *dist.Coordinator {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	coord, err := dist.Dial(ctx, []string{url}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return coord
}

// TestDistRetryHonorsDeadline checks the coordinator never burns
// budget the caller cannot use: against a replica that always fails,
// a 150ms deadline must cut a 10-retry policy short — the loop stops
// as soon as the next backoff cannot finish in time, and the error is
// the typed Unavailable, not a context blowout discovered late.
func TestDistRetryHonorsDeadline(t *testing.T) {
	tbl := fleetTable(400, 7)
	var attempts atomic.Int64
	ts := fakeReplica(t, tbl, func(w http.ResponseWriter, _ *http.Request) {
		attempts.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
		_, _ = io.WriteString(w, `{"error":{"kind":"internal","message":"boom"}}`)
	})
	coord := dialOne(t, ts.URL, dist.Config{Retries: 10, Backoff: 60 * time.Millisecond})

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := coord.Exact(ctx, engine.Query{Func: engine.Count})
	elapsed := time.Since(start)
	if kind := aqppp.ErrorKindOf(err); kind != aqppp.ErrUnavailable {
		t.Fatalf("err = %v (kind %v), want kind %v", err, kind, aqppp.ErrUnavailable)
	}
	if got := attempts.Load(); got < 1 || got > 3 {
		t.Errorf("replica saw %d attempts; the deadline should cap a 10-retry policy at <= 3", got)
	}
	if elapsed > 400*time.Millisecond {
		t.Errorf("fan-out took %v, should abandon well inside the caller's deadline neighborhood", elapsed)
	}
}

// TestDistRetryAfterPropagation is the 429 contract end to end: a
// replica sheds with Retry-After, and the coordinator's own client
// response must carry the hint (header and retry_after_ms) under kind
// "unavailable"/503 — not flatten it into a bare 500. A shed is also
// never retried.
func TestDistRetryAfterPropagation(t *testing.T) {
	tbl := fleetTable(400, 7)
	var attempts atomic.Int64
	ts := fakeReplica(t, tbl, func(w http.ResponseWriter, _ *http.Request) {
		attempts.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Retry-After", "2")
		w.WriteHeader(http.StatusTooManyRequests)
		_, _ = io.WriteString(w, `{"error":{"kind":"quota-exceeded","message":"client is hot","retry_after_ms":1500}}`)
	})
	coord := dialOne(t, ts.URL, dist.Config{Retries: 3, Backoff: 5 * time.Millisecond})
	ddb, dprep := coordDB(t, coord)

	srv := server.New(ddb, server.Config{Coordinator: coord})
	if err := srv.RegisterPrepared(fleetHandle, dprep); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/query",
		strings.NewReader(`{"sql":"SELECT COUNT(*) FROM demo"}`))
	w := httptest.NewRecorder()
	srv.Handler().ServeHTTP(w, req)

	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 (body %s)", w.Code, w.Body.String())
	}
	if got := w.Header().Get("Retry-After"); got != "2" {
		t.Errorf("Retry-After = %q, want %q", got, "2")
	}
	var body struct {
		Error struct {
			Kind         string `json:"kind"`
			RetryAfterMS int64  `json:"retry_after_ms"`
		} `json:"error"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Error.Kind != "unavailable" {
		t.Errorf("kind = %q, want %q", body.Error.Kind, "unavailable")
	}
	if body.Error.RetryAfterMS != 1500 {
		t.Errorf("retry_after_ms = %d, want 1500", body.Error.RetryAfterMS)
	}
	if got := attempts.Load(); got != 1 {
		t.Errorf("replica saw %d attempts; a shed must not be retried", got)
	}
}

// TestDistStatuszAndMetrics checks the coordinator's observability
// surface: /statusz renders the fleet topology and /metrics the
// per-replica counter families.
func TestDistStatuszAndMetrics(t *testing.T) {
	tbl := fleetTable(fleetRows, 7)
	coord, _ := startFleet(t, tbl, 2, dist.Config{Timeout: 10 * time.Second})
	ddb, dprep := coordDB(t, coord)
	if _, err := dprep.Query("SELECT SUM(v) FROM demo WHERE k BETWEEN 10 AND 490"); err != nil {
		t.Fatal(err)
	}

	srv := server.New(ddb, server.Config{Coordinator: coord})
	url := startServer(t, srv)
	get := func(path string) string {
		resp, err := http.Get(url + path)
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = resp.Body.Close() }()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return string(data)
	}

	statusz := get("/statusz")
	var sz struct {
		Dist *dist.Snapshot `json:"dist"`
	}
	if err := json.Unmarshal([]byte(statusz), &sz); err != nil {
		t.Fatal(err)
	}
	if sz.Dist == nil {
		t.Fatal("/statusz has no dist section")
	}
	if sz.Dist.TopoGen == 0 || len(sz.Dist.Replicas) != 2 {
		t.Errorf("dist snapshot: topo gen %d, %d replicas", sz.Dist.TopoGen, len(sz.Dist.Replicas))
	}
	for _, rp := range sz.Dist.Replicas {
		if !rp.Healthy {
			t.Errorf("replica %d unhealthy in statusz", rp.Index)
		}
	}
	if sz.Dist.Replicas[0].Requests == 0 && sz.Dist.Replicas[1].Requests == 0 {
		t.Error("no replica recorded any request")
	}

	metrics := get("/metrics")
	for _, family := range []string{
		"aqppp_dist_topology_generation",
		"aqppp_replica_requests_total",
		"aqppp_replica_healthy",
		"aqppp_replica_request_duration_seconds_bucket",
	} {
		if !strings.Contains(metrics, family) {
			t.Errorf("/metrics missing %s", family)
		}
	}
}

// TestDistQuotaLease drives the token-lease protocol against a real
// authority: leases batch, cached tokens serve without round trips,
// exhaustion denies with a retry hint, and a dead authority fails
// open.
func TestDistQuotaLease(t *testing.T) {
	adb := aqppp.NewDB()
	if err := adb.Register(fleetTable(100, 7)); err != nil {
		t.Fatal(err)
	}
	authority := server.New(adb, server.Config{QuotaRate: 1, QuotaBurst: 3})
	url := startServer(t, authority)

	ql := dist.NewQuotaLease(url, 2, nil)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		ok, _, failedOpen := ql.Allow(ctx, "client-a")
		if !ok || failedOpen {
			t.Fatalf("allow %d: ok=%v failedOpen=%v", i, ok, failedOpen)
		}
	}
	ok, retryAfter, failedOpen := ql.Allow(ctx, "client-a")
	if ok || failedOpen {
		t.Fatalf("over-quota allow: ok=%v failedOpen=%v", ok, failedOpen)
	}
	if retryAfter <= 0 {
		t.Error("denial carried no retry hint")
	}
	snap := ql.Snapshot()
	if snap.LeaseCalls < 2 {
		t.Errorf("lease calls = %d, want >= 2 (3 tokens in batches of 2)", snap.LeaseCalls)
	}
	if snap.Denied == 0 {
		t.Error("denied counter did not advance")
	}

	// A second client has its own bucket.
	if ok, _, _ := ql.Allow(ctx, "client-b"); !ok {
		t.Error("client-b denied by client-a's exhaustion")
	}

	// Authority unreachable: quota is load protection, not correctness —
	// the replica fails open rather than turning an authority outage
	// into a fleet-wide denial of service.
	dead := dist.NewQuotaLease("http://127.0.0.1:1", 2, &http.Client{Timeout: time.Second})
	ok, _, failedOpen = dead.Allow(ctx, "client-a")
	if !ok || !failedOpen {
		t.Errorf("dead authority: ok=%v failedOpen=%v, want fail-open", ok, failedOpen)
	}
	if dead.Snapshot().FailOpen == 0 {
		t.Error("fail-open counter did not advance")
	}
}

// TestWireBitExactness round-trips partials and answers carrying the
// values JSON numbers would mangle: infinities, NaN, and signed zero
// all survive because every float crosses as IEEE-754 bits.
func TestWireBitExactness(t *testing.T) {
	p := engine.Partial{
		N: 3, Sum: math.Inf(1), Sum2: math.NaN(), Min: math.Copysign(0, -1), Max: math.Inf(-1),
	}
	raw, err := json.Marshal(dist.ToWirePartial(p))
	if err != nil {
		t.Fatal(err)
	}
	var wp dist.WirePartial
	if err := json.Unmarshal(raw, &wp); err != nil {
		t.Fatal(err)
	}
	got := dist.FromWirePartial(wp)
	if got.N != p.N ||
		math.Float64bits(got.Sum) != math.Float64bits(p.Sum) ||
		math.Float64bits(got.Sum2) != math.Float64bits(p.Sum2) ||
		math.Float64bits(got.Min) != math.Float64bits(p.Min) ||
		math.Float64bits(got.Max) != math.Float64bits(p.Max) {
		t.Errorf("partial round trip: %+v -> %+v", p, got)
	}

	q := engine.Query{Func: engine.Sum, Col: "v", Ranges: []engine.Range{
		{Col: "k", Lo: math.Inf(-1), Hi: 41.25},
	}}
	rq, err := dist.FromWireQuery(dist.ToWireQuery(q))
	if err != nil {
		t.Fatal(err)
	}
	if rq.Func != q.Func || rq.Col != q.Col || len(rq.Ranges) != 1 ||
		math.Float64bits(rq.Ranges[0].Lo) != math.Float64bits(q.Ranges[0].Lo) ||
		math.Float64bits(rq.Ranges[0].Hi) != math.Float64bits(q.Ranges[0].Hi) {
		t.Errorf("query round trip: %+v -> %+v", q, rq)
	}
}

// TestReplicaEndpointsGuarded checks the fleet-internal endpoints on a
// non-replica server: both 404 with the "not-a-replica" kind.
func TestReplicaEndpointsGuarded(t *testing.T) {
	db := aqppp.NewDB()
	if err := db.Register(fleetTable(100, 7)); err != nil {
		t.Fatal(err)
	}
	srv := server.New(db, server.Config{})
	for _, probe := range []struct{ method, path, body string }{
		{http.MethodGet, "/v1/shard", ""},
		{http.MethodPost, "/v1/partial", `{"v":1,"mode":"exact","table":"demo","query":{"func":"COUNT"}}`},
	} {
		req := httptest.NewRequest(probe.method, probe.path, strings.NewReader(probe.body))
		w := httptest.NewRecorder()
		srv.Handler().ServeHTTP(w, req)
		if w.Code != http.StatusNotFound {
			t.Errorf("%s %s on non-replica: status %d, want 404", probe.method, probe.path, w.Code)
		}
		if !strings.Contains(w.Body.String(), "not-a-replica") {
			t.Errorf("%s %s: body %s lacks not-a-replica kind", probe.method, probe.path, w.Body.String())
		}
	}
}
