package dist

import (
	"fmt"
	"time"

	"aqppp/internal/aqp"
	"aqppp/internal/exec"
)

// aqpEstimate builds an estimate literal (wire decoding constructs
// many).
func aqpEstimate(v, hw, conf float64, rows int) aqp.Estimate {
	return aqp.Estimate{Value: v, HalfWidth: hw, Confidence: conf, SampleRows: rows}
}

// ReplicaError describes a replica that could not serve a partial
// request: unreachable, timed out across every attempt, or shedding
// load. It is always wrapped in an exec.Error of kind Unavailable, so
// errors.As recovers it and exec.KindOf classifies it.
type ReplicaError struct {
	// Replica is the peer's base URL; Shard its index in the layout.
	Replica string
	Shard   int
	// Attempts is how many tries the client made before giving up.
	Attempts int
	// RetryAfter carries a shedding replica's backoff hint (zero
	// otherwise); the serving layer propagates it to the client as a
	// Retry-After header instead of swallowing it as a plain 500.
	RetryAfter time.Duration
	// Err is the final attempt's underlying failure.
	Err error
}

// Error implements error.
func (e *ReplicaError) Error() string {
	return fmt.Sprintf("replica %s (shard %d) unavailable after %d attempt(s): %v",
		e.Replica, e.Shard, e.Attempts, e.Err)
}

// Unwrap exposes the cause to errors.Is / errors.As.
func (e *ReplicaError) Unwrap() error { return e.Err }

// RetryAfterHint reports the shedding replica's backoff hint. The
// serving layer discovers it through this interface method (it cannot
// name ReplicaError without importing the network stack).
func (e *ReplicaError) RetryAfterHint() time.Duration { return e.RetryAfter }

// unavailable wraps a replica failure into the taxonomy.
func unavailable(op string, re *ReplicaError) error {
	return &exec.Error{Kind: exec.Unavailable, Op: op, Err: re}
}
