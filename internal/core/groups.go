package core

import (
	"context"
	"fmt"

	"aqppp/internal/aqp"
	"aqppp/internal/engine"
	"aqppp/internal/ident"
)

// AnswerGroupsFast answers a group-by query with the Appendix C
// heuristic: aggregate identification runs once on the group-stripped
// query ("we consider all groups as the same"), and the chosen pre's
// condition-dimension alignment is reused for every group, with the
// group-by dimensions pinned to each group's block. This trades a little
// per-group accuracy for one identification pass instead of one per
// group — the paper's answer to "this may be costly when the number of
// groups is large".
//
// Every per-group answer keeps the φ-guard: a group whose reused pre is
// worse than plain AQP on the full sample falls back to AQP, so the
// result is never worse than AnswerGroups' φ baseline.
func (p *Processor) AnswerGroupsFast(ctx context.Context, q engine.Query) ([]GroupAnswer, error) {
	if len(q.GroupBy) == 0 {
		return nil, fmt.Errorf("core: AnswerGroupsFast needs GROUP BY")
	}
	if p.Cube == nil || q.Func != engine.Sum || p.Cube.Template.Agg != q.Col {
		// Without a usable cube the heuristic has nothing to share.
		return p.AnswerGroups(ctx, q)
	}
	conf := p.confidence()
	scalar := q
	scalar.GroupBy = nil

	sel, err := ident.SelectBest(p.Cube, scalar, p.subsample(), conf)
	if err != nil {
		return nil, err
	}

	cols := make([]*engine.Column, len(q.GroupBy))
	for i, g := range q.GroupBy {
		c, err := p.Sample.Table.Column(g)
		if err != nil {
			return nil, err
		}
		cols[i] = c
	}
	// Which cube dimensions are group-by columns? A slice (not a map)
	// keeps the pinning order deterministic.
	var groupDims []dimBinding
	for gi, g := range q.GroupBy {
		for di, d := range p.Cube.Template.Dims {
			if d == g {
				groupDims = append(groupDims, dimBinding{dim: di, col: gi})
			}
		}
	}

	n := p.Sample.Size()
	seen := map[string][]float64{}
	var order []string
	for i := 0; i < n; i++ {
		key := engine.GroupKey(cols, i)
		if _, ok := seen[key]; !ok {
			ords := make([]float64, len(cols))
			for j, c := range cols {
				ords[j] = c.Ordinal(i)
			}
			seen[key] = ords
			order = append(order, key)
		}
	}

	out := make([]GroupAnswer, 0, len(order))
	for _, key := range order {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ords := seen[key]
		gq := scalar
		gq.Ranges = append(append([]engine.Range(nil), scalar.Ranges...), pinRanges(q.GroupBy, ords)...)

		pre := sel.Pre
		if !pre.IsPhi() && len(groupDims) > 0 {
			pre = pinPreToGroup(p, pre, groupDims, ords)
		}
		ans, err := p.answerWithPre(gq, pre, sel.Considered)
		if err != nil {
			return nil, err
		}
		out = append(out, GroupAnswer{Key: key, Answer: ans})
	}
	return out, nil
}

// dimBinding pins one cube dimension (by template index) to a group-by
// column (by position in the GROUP BY list).
type dimBinding struct{ dim, col int }

// pinPreToGroup narrows the shared pre's group dimensions to the block
// containing each group's ordinal.
func pinPreToGroup(p *Processor, pre ident.Pre, groupDims []dimBinding, ords []float64) ident.Pre {
	out := ident.Pre{
		Lo: append([]int(nil), pre.Lo...),
		Hi: append([]int(nil), pre.Hi...),
	}
	for _, b := range groupDims {
		di := b.dim
		ord := ords[b.col]
		// The block containing ord: (largest point < ord, smallest
		// point >= ord], both from BracketLeft's two candidates.
		lo, hi := p.Cube.BracketLeft(di, ord)
		if lo >= hi { // ord above every point: clamp to the last block
			lo = hi - 1
			if lo < -1 {
				return ident.Pre{Phi: true}
			}
		}
		out.Lo[di] = lo
		out.Hi[di] = hi
	}
	return out
}

// answerWithPre evaluates one pre on the full sample with the φ-guard.
func (p *Processor) answerWithPre(q engine.Query, pre ident.Pre, considered int) (Answer, error) {
	conf := p.confidence()
	vals, err := ident.DiffVector(p.Sample, p.Cube, q, pre)
	if err != nil {
		return Answer{}, err
	}
	diff := aqp.SumOfValues(p.Sample, vals, conf)
	if !pre.IsPhi() {
		phiVals, err := aqp.ConditionVector(p.Sample, q)
		if err != nil {
			return Answer{}, err
		}
		phiEst := aqp.SumOfValues(p.Sample, phiVals, conf)
		if phiEst.HalfWidth < diff.HalfWidth {
			pre = ident.Pre{Phi: true}
			diff = phiEst
		}
	}
	preVal := 0.0
	if !pre.IsPhi() {
		preVal = pre.Value(p.Cube)
	}
	return Answer{
		Estimate: aqp.Estimate{
			Value:      preVal + diff.Value,
			HalfWidth:  diff.HalfWidth,
			Confidence: conf,
			SampleRows: diff.SampleRows,
		},
		Pre:        pre,
		PreValue:   preVal,
		Candidates: considered,
	}, nil
}
