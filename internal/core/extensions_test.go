package core

import (
	"context"
	"math"
	"testing"
	"time"

	"aqppp/internal/cube"
	"aqppp/internal/engine"
	"aqppp/internal/sample"
	"aqppp/internal/stats"
)

// --- Maintainer (Appendix C: data updates) ---

func TestMaintainerKeepsCubeExact(t *testing.T) {
	tbl := testTable(20000, 30)
	p, _, err := Build(context.Background(), tbl, BuildConfig{
		Template:   cube.Template{Agg: "a", Dims: []string{"c1"}},
		SampleRate: 0.1, CellBudget: 15, Seed: 31, WithCountCube: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMaintainer(tbl, p, 33)
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRNG(35)
	for i := 0; i < 500; i++ {
		c1 := int64(r.Intn(100) + 1)
		if err := m.Insert(c1, int64(r.Intn(40)+1), 100+0.5*float64(c1)+15*r.NormFloat64(), "x"); err != nil {
			t.Fatal(err)
		}
	}
	if m.Inserted() != 500 {
		t.Errorf("Inserted = %d", m.Inserted())
	}
	// The cube's total must equal the grown table's total exactly.
	truth, _ := tbl.Execute(engine.Query{Func: engine.Sum, Col: "a"})
	if got := p.Cube.TotalSum(); math.Abs(got-truth.Value) > 1e-6*math.Abs(truth.Value) {
		t.Errorf("cube total %v != table total %v after inserts", got, truth.Value)
	}
	if got := p.CountCube.TotalSum(); got != 20500 {
		t.Errorf("count cube total = %v, want 20500", got)
	}
	// Answers over the grown table remain accurate.
	q := engine.Query{Func: engine.Sum, Col: "a",
		Ranges: []engine.Range{{Col: "c1", Lo: 10, Hi: 80}}}
	qt, _ := tbl.Execute(q)
	ans, err := p.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(ans.Estimate.Value-qt.Value) / qt.Value; rel > 0.1 {
		t.Errorf("post-insert answer off by %v", rel)
	}
	// The sample grew roughly at the standing rate.
	if p.Sample.SourceRows != 20500 {
		t.Errorf("SourceRows = %d", p.Sample.SourceRows)
	}
	grown := p.Sample.Size() - 2000
	if grown < 20 || grown > 90 {
		t.Errorf("sample grew by %d rows for 500 inserts at 10%%", grown)
	}
	for _, w := range p.Sample.InvP {
		if w != 20500 {
			t.Fatalf("stale InvP %v", w)
		}
	}
}

func TestMaintainerDomainGrowth(t *testing.T) {
	tbl := testTable(5000, 36)
	p, _, err := Build(context.Background(), tbl, BuildConfig{
		Template:   cube.Template{Agg: "a", Dims: []string{"c1"}},
		SampleRate: 0.1, CellBudget: 8, Seed: 37,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMaintainer(tbl, p, 38)
	if err != nil {
		t.Fatal(err)
	}
	// c1 was generated in [1, 100]; insert far beyond the domain.
	if err := m.Insert(int64(5000), int64(1), 123.0, "x"); err != nil {
		t.Fatal(err)
	}
	pts := p.Cube.Points[0]
	if pts[len(pts)-1] != 5000 {
		t.Errorf("last partition point = %v, want extended to 5000", pts[len(pts)-1])
	}
	truth, _ := tbl.Execute(engine.Query{Func: engine.Sum, Col: "a"})
	if got := p.Cube.TotalSum(); math.Abs(got-truth.Value) > 1e-6 {
		t.Errorf("cube total %v != %v after domain growth", got, truth.Value)
	}
}

func TestMaintainerRejections(t *testing.T) {
	tbl := testTable(2000, 39)
	// Cube over the string dimension g.
	p, _, err := Build(context.Background(), tbl, BuildConfig{
		Template:   cube.Template{Agg: "a", Dims: []string{"g"}},
		SampleRate: 0.2, CellBudget: 4, Seed: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMaintainer(tbl, p, 41)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Insert(int64(1), int64(1), 1.0, "brand-new-value"); err == nil {
		t.Error("unseen string dimension value accepted")
	}
	// Known value passes.
	if err := m.Insert(int64(1), int64(1), 1.0, "x"); err != nil {
		t.Fatal(err)
	}
	// No cube → no maintainer.
	s, _ := sample.NewUniform(tbl, 0.1, 42)
	if _, err := NewMaintainer(tbl, &Processor{Sample: s}, 43); err == nil {
		t.Error("cube-less processor accepted")
	}
	// Non-uniform sample → no maintainer.
	mb, _ := sample.NewMeasureBiased(tbl, "a", 0.1, 44)
	if _, err := NewMaintainer(tbl, &Processor{Sample: mb, Cube: p.Cube}, 45); err == nil {
		t.Error("measure-biased sample accepted")
	}
}

// --- Manager (Appendix C: multiple query templates) ---

func TestManagerAllocatesAndRoutes(t *testing.T) {
	tbl := testTable(30000, 50)
	templates := []cube.Template{
		{Agg: "a", Dims: []string{"c1"}},
		{Agg: "a", Dims: []string{"c1", "c2"}},
	}
	m, err := BuildManager(context.Background(), tbl, ManagerConfig{
		Templates: templates, TotalCells: 200, SampleRate: 0.05, Seed: 51,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Processors) != 2 || len(m.Budgets) != 2 {
		t.Fatalf("manager built %d processors", len(m.Processors))
	}
	if m.Budgets[0]+m.Budgets[1] > 200 {
		t.Errorf("budgets %v exceed total", m.Budgets)
	}
	// A c1-only query routes to the 1-D template (tighter cube).
	q1 := engine.Query{Func: engine.Sum, Col: "a",
		Ranges: []engine.Range{{Col: "c1", Lo: 10, Hi: 60}}}
	if got := m.Route(q1); got != 0 {
		t.Errorf("Route(1D query) = %d, want 0", got)
	}
	// A 2-D query routes to the 2-D template.
	q2 := engine.Query{Func: engine.Sum, Col: "a", Ranges: []engine.Range{
		{Col: "c1", Lo: 10, Hi: 60}, {Col: "c2", Lo: 5, Hi: 25}}}
	if got := m.Route(q2); got != 1 {
		t.Errorf("Route(2D query) = %d, want 1", got)
	}
	// Answers flow through.
	truth, _ := tbl.Execute(q2)
	ans, used, err := m.Answer(q2)
	if err != nil {
		t.Fatal(err)
	}
	if used != 1 {
		t.Errorf("answered with template %d", used)
	}
	if rel := math.Abs(ans.Estimate.Value-truth.Value) / truth.Value; rel > 0.1 {
		t.Errorf("manager answer off by %v", rel)
	}
}

func TestManagerValidation(t *testing.T) {
	tbl := testTable(1000, 52)
	if _, err := BuildManager(context.Background(), tbl, ManagerConfig{TotalCells: 10, SampleRate: 0.1}); err == nil {
		t.Error("no templates accepted")
	}
	if _, err := BuildManager(context.Background(), tbl, ManagerConfig{
		Templates:  []cube.Template{{Agg: "a", Dims: []string{"c1"}}, {Agg: "a", Dims: []string{"c2"}}},
		TotalCells: 1, SampleRate: 0.1,
	}); err == nil {
		t.Error("budget below template count accepted")
	}
}

// --- Space allocation (Appendix C) ---

func TestPlanSpace(t *testing.T) {
	tbl := testTable(50000, 60)
	plan, err := PlanSpace(tbl, 200_000, 500*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if plan.SampleRows < 1 || plan.SampleRows > 50000 {
		t.Errorf("sample rows = %d", plan.SampleRows)
	}
	if plan.SampleBytes+plan.CubeBytes > 200_000 {
		t.Errorf("plan exceeds budget: %+v", plan)
	}
	if plan.CubeCells < 0 {
		t.Errorf("negative cube cells")
	}
	// A huge response budget should be limited by space instead.
	plan2, err := PlanSpace(tbl, 100_000, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if plan2.SampleBytes > 100_000 {
		t.Errorf("space cap ignored: %+v", plan2)
	}
	if _, err := PlanSpace(tbl, 0, time.Second); err == nil {
		t.Error("zero budget accepted")
	}
}

// --- Bootstrap answers (§4.2.2) ---

func TestAnswerBootstrapMatchesClosedForm(t *testing.T) {
	tbl := testTable(30000, 70)
	p := buildProcessor(t, tbl, []string{"c1"}, 20)
	q := engine.Query{Func: engine.Sum, Col: "a",
		Ranges: []engine.Range{{Col: "c1", Lo: 13, Hi: 67}}}
	closed, err := p.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	boot, err := p.AnswerBootstrap(context.Background(), q, 300, 71, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(boot.Estimate.Value-closed.Estimate.Value) > 1e-6*math.Abs(closed.Estimate.Value)+1e-9 {
		t.Errorf("bootstrap point %v != closed %v", boot.Estimate.Value, closed.Estimate.Value)
	}
	// Intervals agree within a modest factor (unless both are ~exact).
	if closed.Estimate.HalfWidth > 0 {
		ratio := boot.Estimate.HalfWidth / closed.Estimate.HalfWidth
		if ratio < 0.5 || ratio > 2 {
			t.Errorf("bootstrap ε %v vs closed ε %v", boot.Estimate.HalfWidth, closed.Estimate.HalfWidth)
		}
	}
}

func TestAnswerBootstrapRejects(t *testing.T) {
	tbl := testTable(2000, 72)
	p := buildProcessor(t, tbl, []string{"c1"}, 5)
	if _, err := p.AnswerBootstrap(context.Background(), engine.Query{Func: engine.Avg, Col: "a"}, 10, 1, nil); err == nil {
		t.Error("AVG accepted")
	}
	if _, err := p.AnswerBootstrap(context.Background(), engine.Query{Func: engine.Sum, Col: "a", GroupBy: []string{"g"}}, 10, 1, nil); err == nil {
		t.Error("GROUP BY accepted")
	}
}

func TestAnswerBootstrapDeterministic(t *testing.T) {
	tbl := testTable(5000, 73)
	p := buildProcessor(t, tbl, []string{"c1"}, 10)
	q := engine.Query{Func: engine.Sum, Col: "a",
		Ranges: []engine.Range{{Col: "c1", Lo: 20, Hi: 70}}}
	a, err := p.AnswerBootstrap(context.Background(), q, 50, 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.AnswerBootstrap(context.Background(), q, 50, 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Estimate != b.Estimate {
		t.Errorf("same seed gave %+v and %+v", a.Estimate, b.Estimate)
	}
}

// --- AnswerGroupsFast (Appendix C group-by heuristic) ---

func TestAnswerGroupsFastMatchesSlowPath(t *testing.T) {
	tbl := testTable(30000, 100)
	p, _, err := Build(context.Background(), tbl, BuildConfig{
		Template:   cube.Template{Agg: "a", Dims: []string{"c1", "g"}},
		SampleRate: 0.1, CellBudget: 40, Seed: 101,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := engine.Query{Func: engine.Sum, Col: "a",
		Ranges:  []engine.Range{{Col: "c1", Lo: 10, Hi: 80}},
		GroupBy: []string{"g"}}
	truthRes, _ := tbl.Execute(q)
	truth := map[string]float64{}
	for _, gr := range truthRes.Groups {
		truth[gr.Key] = gr.Value
	}
	slow, err := p.AnswerGroups(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := p.AnswerGroupsFast(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(fast) != len(slow) {
		t.Fatalf("fast %d groups vs slow %d", len(fast), len(slow))
	}
	slowBy := map[string]Answer{}
	for _, g := range slow {
		slowBy[g.Key] = g.Answer
	}
	for _, g := range fast {
		want := truth[g.Key]
		if rel := math.Abs(g.Answer.Estimate.Value-want) / want; rel > 0.15 {
			t.Errorf("fast group %q off truth by %v", g.Key, rel)
		}
		// The heuristic may be somewhat looser than per-group
		// identification, but not wildly (both are guarded by φ).
		sw := slowBy[g.Key].Estimate.HalfWidth
		fw := g.Answer.Estimate.HalfWidth
		if sw > 0 && fw > sw*3 {
			t.Errorf("fast group %q ε %v vs slow %v", g.Key, fw, sw)
		}
	}
}

func TestAnswerGroupsFastValidation(t *testing.T) {
	tbl := testTable(2000, 102)
	p := buildProcessor(t, tbl, []string{"c1"}, 5)
	if _, err := p.AnswerGroupsFast(context.Background(), engine.Query{Func: engine.Sum, Col: "a"}); err == nil {
		t.Error("missing GROUP BY accepted")
	}
	// No-cube path falls back to the full machinery.
	s, _ := sample.NewUniform(tbl, 0.2, 103)
	noCube := &Processor{Sample: s}
	q := engine.Query{Func: engine.Sum, Col: "a", GroupBy: []string{"g"}}
	groups, err := noCube.AnswerGroupsFast(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Errorf("fallback groups = %d", len(groups))
	}
}
