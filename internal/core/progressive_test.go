package core

import (
	"context"
	"math"
	"testing"

	"aqppp/internal/cube"
	"aqppp/internal/engine"
)

func TestProgressiveShrinkingIntervals(t *testing.T) {
	tbl := testTable(30000, 80)
	// Build a cube separately (simulating the warehouse's precomputed
	// aggregates existing before the online session).
	built, _, err := Build(context.Background(), tbl, BuildConfig{
		Template:   cube.Template{Agg: "a", Dims: []string{"c1"}},
		SampleRate: 0.01, CellBudget: 15, Seed: 81,
	})
	if err != nil {
		t.Fatal(err)
	}
	pg, err := NewProgressive(tbl, built.Cube, 0.95, 82)
	if err != nil {
		t.Fatal(err)
	}
	q := engine.Query{Func: engine.Sum, Col: "a",
		Ranges: []engine.Range{{Col: "c1", Lo: 17, Hi: 73}}}
	truth, _ := tbl.Execute(q)
	answers, err := pg.Trace(context.Background(), q, []int{200, 400, 800, 1600})
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 4 {
		t.Fatalf("trace = %d answers", len(answers))
	}
	// Intervals shrink roughly as 1/√n: require strict overall decrease.
	first := answers[0].Estimate.HalfWidth
	last := answers[3].Estimate.HalfWidth
	if last >= first {
		t.Errorf("interval did not shrink: %v -> %v", first, last)
	}
	// Final estimate is close to the truth.
	final := answers[3].Estimate
	if rel := math.Abs(final.Value-truth.Value) / truth.Value; rel > 0.1 {
		t.Errorf("final estimate off by %v", rel)
	}
	if pg.SampleSize() != 3000 {
		t.Errorf("sample size = %d", pg.SampleSize())
	}
}

func TestProgressiveExhaustsTable(t *testing.T) {
	tbl := testTable(500, 83)
	pg, err := NewProgressive(tbl, nil, 0.95, 84)
	if err != nil {
		t.Fatal(err)
	}
	if got := pg.Step(10000); got != 500 {
		t.Errorf("Step beyond table = %d", got)
	}
	// With every row sampled, the estimate is exact.
	q := engine.Query{Func: engine.Sum, Col: "a"}
	truth, _ := tbl.Execute(q)
	ans, err := pg.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ans.Estimate.Value-truth.Value) > 1e-6*math.Abs(truth.Value) {
		t.Errorf("full-sample estimate %v != truth %v", ans.Estimate.Value, truth.Value)
	}
}

func TestProgressiveErrors(t *testing.T) {
	tbl := testTable(100, 85)
	pg, err := NewProgressive(tbl, nil, 0.95, 86)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pg.Answer(engine.Query{Func: engine.Sum, Col: "a"}); err == nil {
		t.Error("empty sample answered")
	}
	pg.Step(10)
	if _, err := pg.Answer(engine.Query{Func: engine.Avg, Col: "a"}); err == nil {
		t.Error("AVG accepted")
	}
	empty := engine.MustNewTable("e", engine.NewFloatColumn("a", nil))
	if _, err := NewProgressive(empty, nil, 0.95, 87); err == nil {
		t.Error("empty table accepted")
	}
}

func TestMinMaxThroughProcessor(t *testing.T) {
	tbl := testTable(10000, 88)
	p, _, err := Build(context.Background(), tbl, BuildConfig{
		Template:   cube.Template{Agg: "a", Dims: []string{"c1"}},
		SampleRate: 0.05, CellBudget: 10, Seed: 89, WithMinMax: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.MinMax) != 1 {
		t.Fatalf("built %d MinMax indexes", len(p.MinMax))
	}
	q := engine.Query{Func: engine.Max, Col: "a",
		Ranges: []engine.Range{{Col: "c1", Lo: 20, Hi: 60}}}
	truth, _ := tbl.Execute(q)
	ans, err := p.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Estimate.Value != truth.Value {
		t.Errorf("MAX = %v, want %v", ans.Estimate.Value, truth.Value)
	}
	if ans.Estimate.HalfWidth != 0 {
		t.Error("exact MAX carries uncertainty")
	}
	// Queries over a non-indexed dimension are rejected with guidance.
	q2 := engine.Query{Func: engine.Min, Col: "a",
		Ranges: []engine.Range{{Col: "c2", Lo: 1, Hi: 5}}}
	if _, err := p.Answer(q2); err == nil {
		t.Error("uncovered MIN accepted")
	}
}
