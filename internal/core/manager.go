package core

import (
	"context"
	"fmt"

	"aqppp/internal/cube"
	"aqppp/internal/engine"
	"aqppp/internal/precompute"
	"aqppp/internal/sample"
)

// Manager serves several query templates over one table with one shared
// sample, splitting a total BP-Cube cell budget across the templates with
// the error-profile-driven allocation of Appendix C ("Multiple Query
// Templates") and routing each incoming query to the template that covers
// it best.
type Manager struct {
	Sample     *sample.Sample
	Templates  []cube.Template
	Budgets    []int
	Processors []*Processor
}

// ManagerConfig configures BuildManager.
type ManagerConfig struct {
	// Templates are the query templates to serve.
	Templates []cube.Template
	// TotalCells is the combined cell budget k split across templates.
	TotalCells int
	// SampleRate, Confidence, Seed, Mode as in BuildConfig.
	SampleRate float64
	Confidence float64
	Seed       uint64
	Mode       precompute.AdjustMode
	// PrebuiltSample reuses an existing uniform sample.
	PrebuiltSample *sample.Sample
}

// BuildManager allocates the budget and builds one processor per
// template. ctx cancels the build with the same granularity as Build.
func BuildManager(ctx context.Context, tbl *engine.Table, cfg ManagerConfig) (*Manager, error) {
	if len(cfg.Templates) == 0 {
		return nil, fmt.Errorf("core: manager needs at least one template")
	}
	if cfg.TotalCells < len(cfg.Templates) {
		return nil, fmt.Errorf("core: budget %d below one cell per template", cfg.TotalCells)
	}
	conf := cfg.Confidence
	if conf == 0 {
		conf = 0.95
	}
	s := cfg.PrebuiltSample
	if s == nil {
		var err error
		s, err = sample.NewUniform(tbl, cfg.SampleRate, cfg.Seed)
		if err != nil {
			return nil, err
		}
	}
	climb := precompute.ClimbConfig{Mode: cfg.Mode, MaxIterations: 30}

	// Per-template error-at-budget functions from cached dimension
	// profiles: err_t(b) = the shape search's achieved error bound.
	errFns := make([]func(int) float64, len(cfg.Templates))
	for t, tmpl := range cfg.Templates {
		profiles := make([]*precompute.Profile, len(tmpl.Dims))
		for i, dim := range tmpl.Dims {
			v, err := precompute.NewView(s, tmpl.Agg, dim, conf)
			if err != nil {
				return nil, err
			}
			p, err := precompute.BuildProfile(ctx, v, cfg.TotalCells, 6, climb)
			if err != nil {
				return nil, err
			}
			profiles[i] = p
		}
		errFns[t] = func(b int) float64 {
			res, err := precompute.DetermineShape(profiles, b)
			if err != nil {
				return 0
			}
			return res.Err
		}
	}
	budgets, err := precompute.AllocateBudget(errFns, cfg.TotalCells)
	if err != nil {
		return nil, err
	}
	m := &Manager{Sample: s, Templates: cfg.Templates, Budgets: budgets}
	for t, tmpl := range cfg.Templates {
		proc, _, err := Build(ctx, tbl, BuildConfig{
			Template:       tmpl,
			CellBudget:     budgets[t],
			Confidence:     conf,
			Seed:           cfg.Seed + uint64(t) + 1,
			Mode:           cfg.Mode,
			PrebuiltSample: s,
		})
		if err != nil {
			return nil, err
		}
		m.Processors = append(m.Processors, proc)
	}
	return m, nil
}

// Route returns the index of the template best matching the query: the
// one whose dimensions cover the most of the query's range columns, with
// ties broken toward fewer template dimensions (a tighter cube).
func (m *Manager) Route(q engine.Query) int {
	best := 0
	bestCover := -1
	bestDims := 1 << 30
	for t, tmpl := range m.Templates {
		if tmpl.Agg != q.Col && !(q.Func == engine.Count && tmpl.Agg == "") {
			continue
		}
		cover := 0
		for _, r := range q.Ranges {
			for _, d := range tmpl.Dims {
				if d == r.Col {
					cover++
					break
				}
			}
		}
		if cover > bestCover || (cover == bestCover && len(tmpl.Dims) < bestDims) {
			best = t
			bestCover = cover
			bestDims = len(tmpl.Dims)
		}
	}
	return best
}

// Answer routes the query and answers it with the selected template's
// processor.
func (m *Manager) Answer(q engine.Query) (Answer, int, error) {
	t := m.Route(q)
	ans, err := m.Processors[t].Answer(q)
	return ans, t, err
}
