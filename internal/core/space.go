package core

import (
	"fmt"
	"time"

	"aqppp/internal/engine"
)

// SpacePlan is the outcome of dividing a byte budget between the sample
// and the BP-Cube (Appendix C, "Space Allocation").
type SpacePlan struct {
	// SampleRows / SampleBytes describe the sample share.
	SampleRows  int
	SampleBytes int64
	// CubeCells / CubeBytes describe the cube share.
	CubeCells int
	CubeBytes int64
	// EstimatedResponse is the predicted per-query scan time at the
	// chosen sample size.
	EstimatedResponse time.Duration
}

// PlanSpace follows the paper's heuristic: sample size dominates query
// response time while cube size does not, so pick the largest sample that
// still meets the response-time target, then spend the remaining bytes on
// BP-Cube cells (8 bytes each). The per-row scan cost is measured by
// probing an actual filtered aggregation over a slice of the table.
func PlanSpace(tbl *engine.Table, totalBytes int64, responseTarget time.Duration) (SpacePlan, error) {
	if totalBytes <= 0 {
		return SpacePlan{}, fmt.Errorf("core: byte budget %d", totalBytes)
	}
	n := tbl.NumRows()
	if n == 0 {
		return SpacePlan{}, fmt.Errorf("core: empty table")
	}
	bytesPerRow := tbl.SizeBytes() / int64(n)
	if bytesPerRow < 1 {
		bytesPerRow = 1
	}
	nsPerRow := probeScanCost(tbl)

	maxRowsByTime := int(responseTarget.Nanoseconds() / maxI64(nsPerRow, 1))
	maxRowsBySpace := int(totalBytes / bytesPerRow)
	rows := maxRowsByTime
	if rows > maxRowsBySpace {
		rows = maxRowsBySpace
	}
	if rows > n {
		rows = n
	}
	if rows < 1 {
		rows = 1
	}
	plan := SpacePlan{
		SampleRows:        rows,
		SampleBytes:       int64(rows) * bytesPerRow,
		EstimatedResponse: time.Duration(int64(rows) * nsPerRow),
	}
	remaining := totalBytes - plan.SampleBytes
	if remaining > 0 {
		plan.CubeCells = int(remaining / 8)
		plan.CubeBytes = int64(plan.CubeCells) * 8
	}
	return plan, nil
}

// probeScanCost measures the per-row cost of a filtered SUM over a probe
// prefix of the table.
func probeScanCost(tbl *engine.Table) int64 {
	probe := tbl.NumRows()
	if probe > 20000 {
		probe = 20000
	}
	idx := make([]int, probe)
	for i := range idx {
		idx[i] = i
	}
	sub := tbl.Gather("probe", idx)
	var col *engine.Column
	for _, c := range sub.Columns {
		if c.Type != engine.String {
			col = c
			break
		}
	}
	if col == nil {
		col = sub.Columns[0]
	}
	lo, hi := col.OrdinalDomain()
	q := engine.Query{Func: engine.Count, Ranges: []engine.Range{{Col: col.Name, Lo: lo, Hi: (lo + hi) / 2}}}
	// Warm once, then time a few runs.
	if _, err := sub.Execute(q); err != nil {
		return 1
	}
	const runs = 5
	start := time.Now()
	for i := 0; i < runs; i++ {
		if _, err := sub.Execute(q); err != nil {
			return 1
		}
	}
	total := time.Since(start).Nanoseconds() / runs
	per := total / int64(probe)
	if per < 1 {
		per = 1
	}
	return per
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
