package core

import (
	"fmt"

	"aqppp/internal/engine"
	"aqppp/internal/sample"
	"aqppp/internal/stats"
)

// Maintainer implements the data-update extension (Appendix C): as rows
// are appended to the base table it incrementally maintains both halves
// of the AQP++ state — the BP-Cube(s) via prefix-cell updates (a
// materialized-view maintenance problem with an incremental algorithm for
// SUM/COUNT) and the uniform sample via Bernoulli inclusion at the
// sample's current rate.
//
// Limitations, by design of the underlying structures: the processor's
// sample must be uniform (stratified/measure-biased samples need their
// own maintenance policies), and string dimension columns cannot receive
// previously unseen values (a new dictionary entry would shift the
// ordinal ranks the cube's partition points were defined over).
type Maintainer struct {
	tbl  *engine.Table
	proc *Processor
	rng  *stats.RNG
	rate float64
	// aggIdx / dimIdx cache column positions for the hot insert path.
	aggCol  *engine.Column
	dimCols []*engine.Column
	// inserted counts maintained rows, for reporting.
	inserted int
}

// NewMaintainer wraps a processor built over tbl. The sampling rate is
// inferred from the processor's sample.
func NewMaintainer(tbl *engine.Table, proc *Processor, seed uint64) (*Maintainer, error) {
	if proc.Cube == nil {
		return nil, fmt.Errorf("core: maintainer needs a processor with a cube")
	}
	if proc.Sample.Kind != sample.Uniform {
		return nil, fmt.Errorf("core: maintainer supports uniform samples, got %v", proc.Sample.Kind)
	}
	m := &Maintainer{
		tbl:  tbl,
		proc: proc,
		rng:  stats.NewRNG(seed),
		rate: proc.Sample.Rate(),
	}
	if proc.Cube.Template.Agg != "" {
		c, err := tbl.Column(proc.Cube.Template.Agg)
		if err != nil {
			return nil, err
		}
		m.aggCol = c
	}
	for _, d := range proc.Cube.Template.Dims {
		c, err := tbl.Column(d)
		if err != nil {
			return nil, err
		}
		m.dimCols = append(m.dimCols, c)
	}
	return m, nil
}

// Insert appends one row (schema order, as engine.Table.AppendRow) and
// maintains the cube(s) and the sample.
func (m *Maintainer) Insert(vals ...interface{}) error {
	// Reject unseen string dimension values up front (see type comment).
	for i, c := range m.tbl.Columns {
		if c.Type != engine.String {
			continue
		}
		s, ok := vals[i].(string)
		if !ok {
			continue // AppendRow will report the type error
		}
		if m.isCubeDim(c.Name) && !dictContains(c, s) {
			return fmt.Errorf("core: new value %q for string dimension %q would shift cube ordinals", s, c.Name)
		}
	}
	if err := m.tbl.AppendRow(vals...); err != nil {
		return err
	}
	row := m.tbl.NumRows() - 1

	// Cube maintenance.
	ords := make([]float64, len(m.dimCols))
	for i, c := range m.dimCols {
		ords[i] = c.Ordinal(row)
		m.proc.Cube.ExtendDomain(i, ords[i])
		if m.proc.CountCube != nil {
			m.proc.CountCube.ExtendDomain(i, ords[i])
		}
	}
	v := 1.0
	if m.aggCol != nil {
		v = m.aggCol.Float(row)
	}
	if err := m.proc.Cube.Insert(ords, v); err != nil {
		return err
	}
	if m.proc.CountCube != nil {
		if err := m.proc.CountCube.Insert(ords, 1); err != nil {
			return err
		}
	}

	// Sample maintenance: Bernoulli inclusion at the standing rate keeps
	// every row's inclusion probability ≈ rate; before answering, the
	// weights are refreshed to the current table size (see refresh).
	if m.rng.Float64() < m.rate {
		s := m.proc.Sample
		for _, col := range m.tbl.Columns {
			sc, err := s.Table.Column(col.Name)
			if err != nil {
				return err
			}
			sc.AppendFrom(col, row)
		}
		s.InvP = append(s.InvP, 0) // refreshed below
	}
	m.inserted++
	m.refresh()
	return nil
}

// refresh re-synchronizes the sample's weights and population size with
// the grown table (uniform estimator: InvP = N for every row), and
// refreshes the identification subsample.
func (m *Maintainer) refresh() {
	s := m.proc.Sample
	s.SourceRows = m.tbl.NumRows()
	n := float64(s.SourceRows)
	for i := range s.InvP {
		s.InvP[i] = n
	}
	if m.proc.Sub != nil {
		m.proc.Sub.SourceRows = s.SourceRows
		for i := range m.proc.Sub.InvP {
			m.proc.Sub.InvP[i] = n
		}
	}
}

// Inserted returns the number of rows maintained so far.
func (m *Maintainer) Inserted() int { return m.inserted }

func (m *Maintainer) isCubeDim(name string) bool {
	for _, d := range m.proc.Cube.Template.Dims {
		if d == name {
			return true
		}
	}
	return false
}

func dictContains(c *engine.Column, s string) bool {
	for _, d := range c.Dict {
		if d == s {
			return true
		}
	}
	return false
}
