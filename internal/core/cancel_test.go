package core

import (
	"context"
	"errors"
	"testing"

	"aqppp/internal/cube"
	"aqppp/internal/engine"
)

// TestCancelBuild: a pre-canceled context stops the pipeline at the
// first stage boundary.
func TestCancelBuild(t *testing.T) {
	tbl := testTable(2000, 51)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := Build(ctx, tbl, BuildConfig{
		Template:   cube.Template{Agg: "a", Dims: []string{"c1"}},
		SampleRate: 0.2, CellBudget: 50,
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("Build err = %v, want context.Canceled", err)
	}
}

// TestCancelAnswerPaths: the per-group, per-resample and per-round
// loops all honor a pre-canceled context.
func TestCancelAnswerPaths(t *testing.T) {
	tbl := testTable(4000, 52)
	p, _, err := Build(context.Background(), tbl, BuildConfig{
		Template:   cube.Template{Agg: "a", Dims: []string{"c1"}},
		SampleRate: 0.2, CellBudget: 50, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	gq := engine.Query{Func: engine.Sum, Col: "a", GroupBy: []string{"g"}}
	if _, err := p.AnswerGroups(ctx, gq); !errors.Is(err, context.Canceled) {
		t.Errorf("AnswerGroups err = %v, want context.Canceled", err)
	}
	if _, err := p.AnswerGroupsFast(ctx, gq); !errors.Is(err, context.Canceled) {
		t.Errorf("AnswerGroupsFast err = %v, want context.Canceled", err)
	}
	q := engine.Query{Func: engine.Sum, Col: "a"}
	if _, err := p.AnswerBootstrap(ctx, q, 50, 1, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("AnswerBootstrap err = %v, want context.Canceled", err)
	}

	pg, err := NewProgressive(tbl, p.Cube, 0.95, 9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pg.Trace(ctx, q, []int{100, 100}); !errors.Is(err, context.Canceled) {
		t.Errorf("Trace err = %v, want context.Canceled", err)
	}

	if _, err := BuildManager(ctx, tbl, ManagerConfig{
		Templates:  []cube.Template{{Agg: "a", Dims: []string{"c1"}}, {Agg: "a", Dims: []string{"c2"}}},
		TotalCells: 40, SampleRate: 0.2,
	}); !errors.Is(err, context.Canceled) {
		t.Errorf("BuildManager err = %v, want context.Canceled", err)
	}
}
