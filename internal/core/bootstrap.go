package core

import (
	"context"
	"fmt"

	"aqppp/internal/aqp"
	"aqppp/internal/engine"
	"aqppp/internal/ident"
	"aqppp/internal/stats"
)

// DefaultResamples is the replicate count used when a caller passes a
// non-positive resample count.
const DefaultResamples = 200

// BootstrapScratch holds the per-resample buffers the bootstrap loop
// reuses: the with-replacement index vector and the replicate value
// vector. The exec layer pools these across queries (sync.Pool) and
// enforces the budget's scratch cap against BootstrapScratchBytes.
type BootstrapScratch struct {
	Idx  []int
	Vals []float64
}

// Grow ensures capacity for an n-row sample.
func (sc *BootstrapScratch) Grow(n int) {
	if cap(sc.Idx) < n {
		sc.Idx = make([]int, n)
	}
	if cap(sc.Vals) < n {
		sc.Vals = make([]float64, n)
	}
	sc.Idx = sc.Idx[:n]
	sc.Vals = sc.Vals[:n]
}

// BootstrapScratchBytes is the scratch footprint of a bootstrap run
// over an n-row sample: 8 bytes per index plus 8 per replicate value.
func BootstrapScratchBytes(n int) int64 { return int64(n) * 16 }

// AnswerBootstrap answers a SUM/COUNT query with an empirical bootstrap
// confidence interval instead of the closed form (§4.2.2): after
// identifying the pre as usual, it resamples the sample, recomputes
// pre(D) + (q̂(S_i) − prê(S_i)) per replicate, and reads the percentile
// interval off the replicate distribution. This is the general path the
// paper prescribes for aggregates without closed-form intervals; for SUM
// it doubles as a cross-check of the CLT interval (see the tests).
//
// ctx is checked once per resample, so a canceled caller unwinds within
// one replicate. scratch may be nil (buffers are then allocated); a
// non-nil scratch is grown to the sample size and reused across all
// replicates.
func (p *Processor) AnswerBootstrap(ctx context.Context, q engine.Query, resamples int, seed uint64, scratch *BootstrapScratch) (Answer, error) {
	if q.Func != engine.Sum && q.Func != engine.Count {
		return Answer{}, fmt.Errorf("core: AnswerBootstrap supports SUM/COUNT, got %v: %w", q.Func, ErrUnsupported)
	}
	if len(q.GroupBy) > 0 {
		return Answer{}, fmt.Errorf("core: AnswerBootstrap does not handle GROUP BY: %w", ErrUnsupported)
	}
	conf := p.confidence()
	c := p.Cube
	if q.Func == engine.Count {
		c = p.countCube()
	}
	pre := ident.Pre{Phi: true}
	considered := 1
	if c != nil {
		sel, err := ident.SelectBest(c, q, p.subsample(), conf)
		if err != nil {
			return Answer{}, err
		}
		pre = sel.Pre
		considered = sel.Considered
	}
	var preVal float64
	if !pre.IsPhi() {
		preVal = pre.Value(c)
	}
	vals, err := p.diffOrCond(q, c, pre)
	if err != nil {
		return Answer{}, err
	}
	point := preVal + aqp.SumOfValues(p.Sample, vals, conf).Value

	if resamples <= 0 {
		resamples = DefaultResamples
	}
	r := stats.NewRNG(seed)
	n := p.Sample.Size()
	if scratch == nil {
		scratch = &BootstrapScratch{}
	}
	scratch.Grow(n)
	idx, rvals := scratch.Idx, scratch.Vals
	reps := make([]float64, 0, resamples)
	for rep := 0; rep < resamples; rep++ {
		if err := ctx.Err(); err != nil {
			return Answer{}, err
		}
		for i := range idx {
			idx[i] = r.Intn(n)
		}
		rs := aqp.ResampleRows(p.Sample, idx)
		for i, j := range idx {
			rvals[i] = vals[j]
		}
		est := aqp.SumOfValues(rs, rvals, conf)
		reps = append(reps, preVal+est.Value)
	}
	alpha := (1 - conf) / 2
	lo := stats.Quantile(reps, alpha)
	hi := stats.Quantile(reps, 1-alpha)
	return Answer{
		Estimate: aqp.Estimate{
			Value:      point,
			HalfWidth:  (hi - lo) / 2,
			Confidence: conf,
			SampleRows: n,
		},
		Pre:        pre,
		PreValue:   preVal,
		Candidates: considered,
	}, nil
}
