package core

import (
	"fmt"

	"aqppp/internal/aqp"
	"aqppp/internal/engine"
	"aqppp/internal/ident"
	"aqppp/internal/stats"
)

// AnswerBootstrap answers a SUM/COUNT query with an empirical bootstrap
// confidence interval instead of the closed form (§4.2.2): after
// identifying the pre as usual, it resamples the sample, recomputes
// pre(D) + (q̂(S_i) − prê(S_i)) per replicate, and reads the percentile
// interval off the replicate distribution. This is the general path the
// paper prescribes for aggregates without closed-form intervals; for SUM
// it doubles as a cross-check of the CLT interval (see the tests).
func (p *Processor) AnswerBootstrap(q engine.Query, resamples int, seed uint64) (Answer, error) {
	if q.Func != engine.Sum && q.Func != engine.Count {
		return Answer{}, fmt.Errorf("core: AnswerBootstrap supports SUM/COUNT, got %v", q.Func)
	}
	if len(q.GroupBy) > 0 {
		return Answer{}, fmt.Errorf("core: AnswerBootstrap does not handle GROUP BY")
	}
	conf := p.confidence()
	c := p.Cube
	if q.Func == engine.Count {
		c = p.countCube()
	}
	pre := ident.Pre{Phi: true}
	considered := 1
	if c != nil {
		sel, err := ident.SelectBest(c, q, p.subsample(), conf)
		if err != nil {
			return Answer{}, err
		}
		pre = sel.Pre
		considered = sel.Considered
	}
	var preVal float64
	if !pre.IsPhi() {
		preVal = pre.Value(c)
	}
	vals, err := p.diffOrCond(q, c, pre)
	if err != nil {
		return Answer{}, err
	}
	point := preVal + aqp.SumOfValues(p.Sample, vals, conf).Value

	if resamples <= 0 {
		resamples = 200
	}
	r := stats.NewRNG(seed)
	n := p.Sample.Size()
	idx := make([]int, n)
	reps := make([]float64, 0, resamples)
	for rep := 0; rep < resamples; rep++ {
		for i := range idx {
			idx[i] = r.Intn(n)
		}
		rs := aqp.ResampleRows(p.Sample, idx)
		rvals := make([]float64, n)
		for i, j := range idx {
			rvals[i] = vals[j]
		}
		est := aqp.SumOfValues(rs, rvals, conf)
		reps = append(reps, preVal+est.Value)
	}
	alpha := (1 - conf) / 2
	lo := stats.Quantile(reps, alpha)
	hi := stats.Quantile(reps, 1-alpha)
	return Answer{
		Estimate: aqp.Estimate{
			Value:      point,
			HalfWidth:  (hi - lo) / 2,
			Confidence: conf,
			SampleRows: n,
		},
		Pre:        pre,
		PreValue:   preVal,
		Candidates: considered,
	}, nil
}
