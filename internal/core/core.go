// Package core is the AQP++ query processor (§4 of the paper): it answers
// aggregation queries by combining a precomputed BP-Cube with a sample,
// estimating the *difference* between the user query and the identified
// precomputed aggregate (Equation 4):
//
//	q(D) ≈ pre(D) + (q̂(S) − prê(S))
//
// With pre = φ it degenerates to plain AQP; with pre = q it returns the
// exact precomputed answer — the unification property of §4.2.1.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"aqppp/internal/aqp"
	"aqppp/internal/cube"
	"aqppp/internal/engine"
	"aqppp/internal/ident"
	"aqppp/internal/sample"
)

// ErrUnsupported marks well-formed requests the processor cannot serve
// (an aggregate outside a path's repertoire, a GROUP BY where none is
// handled, a MIN/MAX with no covering index). Error sites wrap it so
// the exec layer can classify without string matching.
var ErrUnsupported = errors.New("unsupported")

// Processor answers queries for one query template using a sample and an
// optional BP-Cube.
type Processor struct {
	// Sample is the full sample used for final estimates.
	Sample *sample.Sample
	// Sub is the identification subsample (§5.2); if nil, identification
	// scores candidates on the full sample.
	Sub *sample.Sample
	// Cube is the SUM BP-Cube for the template; nil disables
	// precomputation entirely (pure AQP).
	Cube *cube.BPCube
	// CountCube optionally holds a COUNT cube over the same partition
	// points, enabling AQP++ AVG answers.
	CountCube *cube.BPCube
	// MinMax holds optional per-dimension range-extrema indexes for
	// exact MIN/MAX answers (the §8 future-work direction: these
	// aggregates are easy for precomputation and impossible for
	// sampling).
	MinMax []*cube.MinMaxIndex
	// Confidence is the CI level (default 0.95 when zero).
	Confidence float64
}

// Answer is an AQP++ query result.
type Answer struct {
	// Estimate is the point estimate and confidence interval.
	Estimate aqp.Estimate
	// Pre is the identified precomputed aggregate (φ when none helped).
	Pre ident.Pre
	// PreValue is pre(D), the exact precomputed constant that anchored
	// the estimate.
	PreValue float64
	// Candidates is |P⁻|, the number of aggregates considered.
	Candidates int
}

// GroupAnswer is one group's answer for group-by queries.
type GroupAnswer struct {
	Key    string
	Answer Answer
}

func (p *Processor) confidence() float64 {
	if p.Confidence == 0 {
		return 0.95
	}
	return p.Confidence
}

func (p *Processor) subsample() *sample.Sample {
	if p.Sub != nil {
		return p.Sub
	}
	return p.Sample
}

// Answer answers a SUM, COUNT or AVG query. SUM/COUNT run the full AQP++
// pipeline (identify pre on the subsample, estimate the diff on the full
// sample, add pre(D)); AVG combines a SUM and a COUNT answer with a
// delta-method interval (Appendix C).
func (p *Processor) Answer(q engine.Query) (Answer, error) {
	if len(q.GroupBy) > 0 {
		return Answer{}, fmt.Errorf("core: use AnswerGroups for GROUP BY queries")
	}
	switch q.Func {
	case engine.Sum:
		return p.answerSum(q, p.Cube, q.Col)
	case engine.Count:
		return p.answerSum(q, p.countCube(), "")
	case engine.Avg:
		return p.answerAvg(q)
	case engine.Min, engine.Max:
		return p.answerMinMax(q)
	default:
		return Answer{}, fmt.Errorf("core: %w aggregate %v", ErrUnsupported, q.Func)
	}
}

// answerMinMax serves MIN/MAX exactly from a matching MinMaxIndex: the
// query's range columns must all be the index's single dimension.
func (p *Processor) answerMinMax(q engine.Query) (Answer, error) {
	for _, idx := range p.MinMax {
		if idx.Agg != q.Col {
			continue
		}
		covered := true
		for _, r := range q.Ranges {
			if r.Col != idx.Dim {
				covered = false
				break
			}
		}
		if !covered {
			continue
		}
		v, err := idx.Answer(q)
		if err != nil {
			return Answer{}, err
		}
		return Answer{
			Estimate: aqp.Estimate{Value: v, Confidence: 1},
			Pre:      ident.Pre{Phi: true},
			PreValue: v,
		}, nil
	}
	return Answer{}, fmt.Errorf("core: %w: no MIN/MAX index covers %v (build one with WithMinMax)", ErrUnsupported, q)
}

// countCube returns the COUNT cube if available.
func (p *Processor) countCube() *cube.BPCube {
	if p.CountCube != nil {
		return p.CountCube
	}
	if p.Cube != nil && p.Cube.Template.Agg == "" {
		return p.Cube
	}
	return nil
}

// answerSum runs the SUM/COUNT pipeline against the given cube. cubeAgg
// is the aggregate column the cube must match ("" for COUNT).
func (p *Processor) answerSum(q engine.Query, c *cube.BPCube, cubeAgg string) (Answer, error) {
	conf := p.confidence()
	if c == nil || c.Template.Agg != cubeAgg {
		// No usable cube: plain AQP (pre = φ).
		est, err := aqp.EstimateSum(p.Sample, q, conf)
		if err != nil {
			return Answer{}, err
		}
		return Answer{Estimate: est, Pre: ident.Pre{Phi: true}, Candidates: 1}, nil
	}
	sel, err := ident.SelectBest(c, q, p.subsample(), conf)
	if err != nil {
		return Answer{}, err
	}
	vals, err := ident.DiffVector(p.Sample, c, q, sel.Pre)
	if err != nil {
		return Answer{}, err
	}
	diff := aqp.SumOfValues(p.Sample, vals, conf)
	pre := sel.Pre
	// Identification scored candidates on a small subsample; guard the
	// final answer by re-checking the chosen pre against φ on the full
	// sample (error(q, P) minimizes over P⁺, and φ ∈ P⁺ — a noisy
	// subsample must not leave us worse than plain AQP).
	if !pre.IsPhi() {
		phiVals, err := aqp.ConditionVector(p.Sample, q)
		if err != nil {
			return Answer{}, err
		}
		phiEst := aqp.SumOfValues(p.Sample, phiVals, conf)
		if phiEst.HalfWidth < diff.HalfWidth {
			pre = ident.Pre{Phi: true}
			diff = phiEst
		}
	}
	preVal := pre.Value(c)
	return Answer{
		Estimate: aqp.Estimate{
			Value:      preVal + diff.Value,
			HalfWidth:  diff.HalfWidth,
			Confidence: conf,
			SampleRows: diff.SampleRows,
		},
		Pre:        pre,
		PreValue:   preVal,
		Candidates: sel.Considered,
	}, nil
}

// answerAvg answers AVG as the ratio of an AQP++ SUM and an AQP++ COUNT.
// The interval uses linearization: Var(R̂) ≈ Var(D̂_s − R̂·D̂_c)/T̂² where
// D̂_s, D̂_c are the two diff estimators (the pre constants carry no
// variance).
func (p *Processor) answerAvg(q engine.Query) (Answer, error) {
	conf := p.confidence()
	sumQ := q
	sumQ.Func = engine.Sum
	cntQ := q
	cntQ.Func = engine.Count
	sumAns, err := p.answerSum(sumQ, p.Cube, q.Col)
	if err != nil {
		return Answer{}, err
	}
	cntAns, err := p.answerSum(cntQ, p.countCube(), "")
	if err != nil {
		return Answer{}, err
	}
	if cntAns.Estimate.Value == 0 {
		return Answer{
			Estimate: aqp.Estimate{Confidence: conf, SampleRows: p.Sample.Size()},
			Pre:      sumAns.Pre,
		}, nil
	}
	r := sumAns.Estimate.Value / cntAns.Estimate.Value
	// Residual diff vector: (a_i − R̂)·(cond_q − cond_pre) terms from the
	// two pipelines.
	sumVals, err := p.diffOrCond(sumQ, p.Cube, sumAns.Pre)
	if err != nil {
		return Answer{}, err
	}
	cntVals, err := p.diffOrCond(cntQ, p.countCube(), cntAns.Pre)
	if err != nil {
		return Answer{}, err
	}
	resid := make([]float64, len(sumVals))
	for i := range resid {
		resid[i] = sumVals[i] - r*cntVals[i]
	}
	re := aqp.SumOfValues(p.Sample, resid, conf)
	return Answer{
		Estimate: aqp.Estimate{
			Value:      r,
			HalfWidth:  re.HalfWidth / math.Abs(cntAns.Estimate.Value),
			Confidence: conf,
			SampleRows: p.Sample.Size(),
		},
		Pre:        sumAns.Pre,
		PreValue:   sumAns.PreValue,
		Candidates: sumAns.Candidates + cntAns.Candidates,
	}, nil
}

// diffOrCond returns the diff vector for the pre chosen earlier, falling
// back to the plain condition vector when no cube backs the pre.
func (p *Processor) diffOrCond(q engine.Query, c *cube.BPCube, pre ident.Pre) ([]float64, error) {
	if c == nil || pre.IsPhi() {
		return aqp.ConditionVector(p.Sample, q)
	}
	return ident.DiffVector(p.Sample, c, q, pre)
}

// AnswerGroups answers a group-by query (Appendix C): each group observed
// in the sample is answered through the scalar pipeline with the group
// pinned via equality ranges on the group-by columns. When the group-by
// attributes are cube dimensions whose values align with partition
// points, each group's pre region pins them exactly; otherwise the pre
// simply does not restrict them (still unbiased, higher variance, and the
// subsample scoring arbitrates against φ).
//
// ctx is checked once per group, so a canceled caller unwinds within
// one group's pipeline.
func (p *Processor) AnswerGroups(ctx context.Context, q engine.Query) ([]GroupAnswer, error) {
	if len(q.GroupBy) == 0 {
		return nil, fmt.Errorf("core: AnswerGroups needs GROUP BY")
	}
	cols := make([]*engine.Column, len(q.GroupBy))
	for i, g := range q.GroupBy {
		c, err := p.Sample.Table.Column(g)
		if err != nil {
			return nil, err
		}
		cols[i] = c
	}
	n := p.Sample.Size()
	type groupInfo struct {
		ords []float64
	}
	seen := map[string]groupInfo{}
	var order []string
	for i := 0; i < n; i++ {
		key := engine.GroupKey(cols, i)
		if _, ok := seen[key]; !ok {
			ords := make([]float64, len(cols))
			for j, c := range cols {
				ords[j] = c.Ordinal(i)
			}
			seen[key] = groupInfo{ords: ords}
			order = append(order, key)
		}
	}
	out := make([]GroupAnswer, 0, len(order))
	for _, key := range order {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		gi := seen[key]
		gq := q
		gq.GroupBy = nil
		gq.Ranges = append(append([]engine.Range(nil), q.Ranges...), pinRanges(q.GroupBy, gi.ords)...)
		ans, err := p.Answer(gq)
		if err != nil {
			return nil, err
		}
		out = append(out, GroupAnswer{Key: key, Answer: ans})
	}
	return out, nil
}

// pinRanges builds equality ranges pinning each group column to one
// ordinal.
func pinRanges(cols []string, ords []float64) []engine.Range {
	rs := make([]engine.Range, len(cols))
	for i := range cols {
		rs[i] = engine.Range{Col: cols[i], Lo: ords[i], Hi: ords[i]}
	}
	return rs
}
