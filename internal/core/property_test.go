package core

import (
	"context"
	"testing"

	"aqppp/internal/aqp"
	"aqppp/internal/cube"
	"aqppp/internal/engine"
	"aqppp/internal/stats"
)

// TestAnswerNeverWorseThanAQP verifies the φ-guard invariant: for every
// query, the AQP++ interval on the full sample is at most plain AQP's on
// the same sample (φ ∈ P⁺, and the final selection re-checks it).
func TestAnswerNeverWorseThanAQP(t *testing.T) {
	tbl := testTable(30000, 90)
	p, _, err := Build(context.Background(), tbl, BuildConfig{
		Template:   cube.Template{Agg: "a", Dims: []string{"c1", "c2"}},
		SampleRate: 0.05, CellBudget: 60, Seed: 91,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRNG(92)
	for trial := 0; trial < 80; trial++ {
		lo1 := float64(r.Intn(90) + 1)
		hi1 := lo1 + float64(r.Intn(20))
		lo2 := float64(r.Intn(30) + 1)
		hi2 := lo2 + float64(r.Intn(10))
		q := engine.Query{Func: engine.Sum, Col: "a", Ranges: []engine.Range{
			{Col: "c1", Lo: lo1, Hi: hi1}, {Col: "c2", Lo: lo2, Hi: hi2},
		}}
		ans, err := p.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := aqp.EstimateSum(p.Sample, q, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if ans.Estimate.HalfWidth > plain.HalfWidth+1e-9 {
			t.Fatalf("trial %d: AQP++ ε %v worse than AQP ε %v (pre %v)",
				trial, ans.Estimate.HalfWidth, plain.HalfWidth, ans.Pre)
		}
	}
}

// TestMorePartitionPointsNeverHurt verifies the monotonicity that
// underlies the k-sweep figures: growing the cube budget does not
// increase the full-sample interval for a fixed workload (up to
// identification noise, which the φ-guard and the shared sample bound).
func TestMorePartitionPointsNeverHurt(t *testing.T) {
	tbl := testTable(30000, 93)
	var prevMedian float64
	queries := make([]engine.Query, 0, 30)
	r := stats.NewRNG(94)
	for i := 0; i < 30; i++ {
		lo := float64(r.Intn(80) + 1)
		queries = append(queries, engine.Query{Func: engine.Sum, Col: "a",
			Ranges: []engine.Range{{Col: "c1", Lo: lo, Hi: lo + float64(r.Intn(20)+2)}}})
	}
	for ki, k := range []int{5, 20, 80} {
		p, _, err := Build(context.Background(), tbl, BuildConfig{
			Template:   cube.Template{Agg: "a", Dims: []string{"c1"}},
			SampleRate: 0.05, CellBudget: k, Seed: 95,
		})
		if err != nil {
			t.Fatal(err)
		}
		var widths []float64
		for _, q := range queries {
			ans, err := p.Answer(q)
			if err != nil {
				t.Fatal(err)
			}
			widths = append(widths, ans.Estimate.HalfWidth)
		}
		med := stats.Median(widths)
		if ki > 0 && med > prevMedian*1.2 {
			t.Errorf("k=%d: median ε %v grew from %v", k, med, prevMedian)
		}
		prevMedian = med
	}
}
