package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"aqppp/internal/cube"
	"aqppp/internal/engine"
	"aqppp/internal/precompute"
	"aqppp/internal/sample"
)

// BuildConfig drives the end-to-end AQP++ preprocessing pipeline
// (§6.2 "Putting It All Together"): draw a sample, determine the BP-Cube
// shape from per-dimension error profiles, hill-climb the partition
// points per dimension, and build the cube over the full data.
type BuildConfig struct {
	// Template is the query template [SUM(Agg), Dims...].
	Template cube.Template
	// SampleRate is the uniform sampling rate (paper default 0.05%).
	SampleRate float64
	// SubsampleRate is the identification subsample's share of the
	// sample; 0 selects the paper's 1/4^d rule (§5.2), floored so the
	// subsample keeps at least 64 rows when available.
	SubsampleRate float64
	// CellBudget is the BP-Cube cell threshold k.
	CellBudget int
	// Confidence is the CI level (default 0.95).
	Confidence float64
	// Seed drives all randomness.
	Seed uint64
	// Mode selects the hill-climbing adjustment (default Global).
	Mode precompute.AdjustMode
	// ProfileAnchors is the number of error-profile anchor budgets per
	// dimension (paper's m, default 8).
	ProfileAnchors int
	// MaxIterations caps hill climbing per dimension (default 50).
	MaxIterations int
	// EqualPartitionOnly skips hill climbing (the ablation baseline).
	EqualPartitionOnly bool
	// WithCountCube additionally builds a COUNT cube over the same
	// partition points, enabling AVG answers.
	WithCountCube bool
	// WithMinMax additionally builds one exact range-extrema index per
	// template dimension, enabling MIN/MAX answers (§8 future work).
	WithMinMax bool
	// PrebuiltSample reuses an existing sample (so AQP and AQP++ compare
	// on identical samples, as in the paper's setup); when set,
	// SampleRate is ignored.
	PrebuiltSample *sample.Sample
}

// BuildStats reports preprocessing cost (Table 1's metrics).
type BuildStats struct {
	SampleTime   time.Duration
	OptimizeTime time.Duration
	CubeTime     time.Duration
	SampleBytes  int64
	CubeBytes    int64
	Shape        []int
}

// TotalTime returns the full preprocessing wall time.
func (b BuildStats) TotalTime() time.Duration {
	return b.SampleTime + b.OptimizeTime + b.CubeTime
}

// TotalBytes returns the full preprocessing space.
func (b BuildStats) TotalBytes() int64 { return b.SampleBytes + b.CubeBytes }

// Build runs the preprocessing pipeline and returns a ready Processor.
// ctx cancels the pipeline: the hill climber checks it per climb step,
// and each stage boundary checks it before starting, so a canceled
// Prepare unwinds within one climb iteration (or one cube/stage build).
func Build(ctx context.Context, tbl *engine.Table, cfg BuildConfig) (*Processor, BuildStats, error) {
	var st BuildStats
	if len(cfg.Template.Dims) == 0 {
		return nil, st, fmt.Errorf("core: template has no dimensions")
	}
	if cfg.CellBudget < 1 {
		return nil, st, fmt.Errorf("core: cell budget %d < 1", cfg.CellBudget)
	}
	conf := cfg.Confidence
	if conf == 0 {
		conf = 0.95
	}
	anchors := cfg.ProfileAnchors
	if anchors == 0 {
		anchors = 8
	}
	maxIter := cfg.MaxIterations
	if maxIter == 0 {
		maxIter = 50
	}
	climb := precompute.ClimbConfig{Mode: cfg.Mode, MaxIterations: maxIter}

	// Stage 0: the sample.
	if err := ctx.Err(); err != nil {
		return nil, st, err
	}
	t0 := time.Now()
	s := cfg.PrebuiltSample
	if s == nil {
		var err error
		s, err = sample.NewUniform(tbl, cfg.SampleRate, cfg.Seed)
		if err != nil {
			return nil, st, err
		}
	}
	st.SampleTime = time.Since(t0)
	st.SampleBytes = s.SizeBytes()

	// Stage 1 (on the sample): shape + partition points.
	t1 := time.Now()
	d := len(cfg.Template.Dims)
	views := make([]*precompute.View, d)
	for i, dim := range cfg.Template.Dims {
		v, err := precompute.NewView(s, cfg.Template.Agg, dim, conf)
		if err != nil {
			return nil, st, err
		}
		views[i] = v
	}
	var ks []int
	if d == 1 {
		ks = []int{cfg.CellBudget}
	} else {
		profiles := make([]*precompute.Profile, d)
		for i, v := range views {
			p, err := precompute.BuildProfile(ctx, v, cfg.CellBudget, anchors, climb)
			if err != nil {
				return nil, st, err
			}
			profiles[i] = p
		}
		shape, err := precompute.DetermineShape(profiles, cfg.CellBudget)
		if err != nil {
			return nil, st, err
		}
		ks = shape.Ks
	}
	points := make([][]float64, d)
	for i, v := range views {
		var cuts []int
		var err error
		if cfg.EqualPartitionOnly {
			cuts, err = precompute.EqualPartition(v, ks[i])
		} else {
			var res precompute.ClimbResult
			res, err = precompute.Optimize1D(ctx, v, ks[i], climb)
			cuts = res.Cuts
		}
		if err != nil {
			return nil, st, err
		}
		points[i], err = v.CutsToPoints(cuts)
		if err != nil {
			return nil, st, err
		}
		// Partition points chosen on the sample may not reach the full
		// table's domain max; cube.Build appends it as needed.
	}
	st.OptimizeTime = time.Since(t1)

	// Stage 2 (full data): build the cube(s).
	if err := ctx.Err(); err != nil {
		return nil, st, err
	}
	t2 := time.Now()
	c, err := cube.Build(tbl, cfg.Template, points)
	if err != nil {
		return nil, st, err
	}
	var cc *cube.BPCube
	if cfg.WithCountCube && cfg.Template.Agg != "" {
		cc, err = cube.Build(tbl, cube.Template{Agg: "", Dims: cfg.Template.Dims}, points)
		if err != nil {
			return nil, st, err
		}
	}
	var mmIndexes []*cube.MinMaxIndex
	if cfg.WithMinMax && cfg.Template.Agg != "" {
		for _, dim := range cfg.Template.Dims {
			mm, err := cube.BuildMinMax(tbl, cfg.Template.Agg, dim)
			if err != nil {
				return nil, st, err
			}
			mmIndexes = append(mmIndexes, mm)
		}
	}
	st.CubeTime = time.Since(t2)
	st.Shape = c.Shape() // actual per-dimension point counts (may be
	// below the budgeted split when a dimension has few distinct values)
	st.CubeBytes = c.SizeBytes()
	if cc != nil {
		st.CubeBytes += cc.SizeBytes()
	}
	for _, mm := range mmIndexes {
		st.CubeBytes += mm.SizeBytes()
	}

	subRate := cfg.SubsampleRate
	if subRate == 0 {
		// The paper's 1/4^d rule assumes samples of hundreds of thousands
		// of rows; at small sample sizes identification noise dominates,
		// so keep at least 256 scoring rows (the ablation bench measures
		// this trade-off).
		subRate = 1 / math.Pow(4, float64(d))
		if minRows := 256.0; subRate*float64(s.Size()) < minRows {
			subRate = minRows / float64(s.Size())
		}
		if subRate > 1 {
			subRate = 1
		}
	}
	return &Processor{
		Sample:     s,
		Sub:        s.Subsample(subRate, cfg.Seed+1),
		Cube:       c,
		CountCube:  cc,
		MinMax:     mmIndexes,
		Confidence: conf,
	}, st, nil
}
