package core

import (
	"context"
	"fmt"

	"aqppp/internal/cube"
	"aqppp/internal/engine"
	"aqppp/internal/sample"
	"aqppp/internal/stats"
)

// Progressive implements online aggregation in the AQP++ frame (the §8
// future direction, with the §2 online-aggregation lineage): the sample
// grows in steps while queries keep being answered against the same
// BP-Cube, so the confidence interval shrinks live at roughly 1/√n while
// the precomputed anchor stays fixed.
type Progressive struct {
	tbl  *engine.Table
	c    *cube.BPCube
	conf float64
	// perm is a fixed random permutation of the table's rows; the sample
	// is always its prefix, which makes every prefix an exact uniform
	// without-replacement sample.
	perm   []int
	taken  int
	sample *sample.Sample
}

// NewProgressive starts with an empty sample over tbl and an optional
// prebuilt cube (nil means plain progressive AQP).
func NewProgressive(tbl *engine.Table, c *cube.BPCube, confidence float64, seed uint64) (*Progressive, error) {
	n := tbl.NumRows()
	if n == 0 {
		return nil, fmt.Errorf("core: progressive needs a nonempty table")
	}
	if confidence == 0 {
		confidence = 0.95
	}
	r := stats.NewRNG(seed)
	p := &Progressive{
		tbl: tbl, c: c, conf: confidence,
		perm: r.Perm(n),
	}
	// An empty table with the source schema holds the growing sample.
	cols := make([]*engine.Column, len(tbl.Columns))
	for i, src := range tbl.Columns {
		cols[i] = &engine.Column{Name: src.Name, Type: src.Type}
	}
	st, err := engine.NewTable(tbl.Name+"_prog", cols...)
	if err != nil {
		return nil, err
	}
	p.sample = &sample.Sample{Kind: sample.Uniform, Table: st, SourceRows: n}
	return p, nil
}

// Step grows the sample by up to addRows rows (fewer when the table is
// exhausted) and returns the new sample size.
func (p *Progressive) Step(addRows int) int {
	n := len(p.perm)
	for i := 0; i < addRows && p.taken < n; i++ {
		row := p.perm[p.taken]
		for j, src := range p.tbl.Columns {
			p.sample.Table.Columns[j].AppendFrom(src, row)
		}
		p.sample.InvP = append(p.sample.InvP, float64(n))
		p.taken++
	}
	return p.taken
}

// SampleSize returns the current sample size.
func (p *Progressive) SampleSize() int { return p.taken }

// Answer answers a SUM/COUNT query at the current sample size. With a
// cube, identification runs on the whole current sample (no separate
// subsample: in the online setting the sample is the scarce resource).
func (p *Progressive) Answer(q engine.Query) (Answer, error) {
	if p.taken == 0 {
		return Answer{}, fmt.Errorf("core: progressive sample is empty; call Step first")
	}
	if q.Func != engine.Sum && q.Func != engine.Count {
		return Answer{}, fmt.Errorf("core: progressive answers SUM/COUNT, got %v: %w", q.Func, ErrUnsupported)
	}
	proc := &Processor{Sample: p.sample, Confidence: p.conf}
	if p.c != nil && ((q.Func == engine.Sum && p.c.Template.Agg == q.Col) ||
		(q.Func == engine.Count && p.c.Template.Agg == "")) {
		proc.Cube = p.c
	}
	return proc.Answer(q)
}

// Trace answers the query at each step of the given schedule and returns
// the successive estimates — the classic online-aggregation progress
// curve. ctx is checked once per round, so a canceled caller unwinds
// between rounds with ctx's error and the rounds completed so far are
// discarded.
func (p *Progressive) Trace(ctx context.Context, q engine.Query, steps []int) ([]Answer, error) {
	var out []Answer
	for _, add := range steps {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		p.Step(add)
		ans, err := p.Answer(q)
		if err != nil {
			return nil, err
		}
		out = append(out, ans)
	}
	return out, nil
}
