package core

import (
	"context"
	"math"
	"testing"

	"aqppp/internal/aqp"
	"aqppp/internal/cube"
	"aqppp/internal/engine"
	"aqppp/internal/sample"
	"aqppp/internal/stats"
)

func testTable(n int, seed uint64) *engine.Table {
	r := stats.NewRNG(seed)
	c1 := make([]int64, n)
	c2 := make([]int64, n)
	a := make([]float64, n)
	g := make([]string, n)
	for i := 0; i < n; i++ {
		c1[i] = int64(r.Intn(100) + 1)
		c2[i] = int64(r.Intn(40) + 1)
		a[i] = 100 + 0.5*float64(c1[i]) + 15*r.NormFloat64()
		if r.Intn(4) == 0 {
			g[i] = "x"
		} else {
			g[i] = "y"
		}
	}
	return engine.MustNewTable("t",
		engine.NewIntColumn("c1", c1),
		engine.NewIntColumn("c2", c2),
		engine.NewFloatColumn("a", a),
		engine.NewStringColumn("g", g),
	)
}

func buildProcessor(t *testing.T, tbl *engine.Table, dims []string, budget int) *Processor {
	t.Helper()
	p, _, err := Build(context.Background(), tbl, BuildConfig{
		Template:   cube.Template{Agg: "a", Dims: dims},
		SampleRate: 0.1,
		CellBudget: budget,
		Seed:       42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAnswerSumAccuracy(t *testing.T) {
	tbl := testTable(30000, 1)
	p := buildProcessor(t, tbl, []string{"c1"}, 20)
	q := engine.Query{Func: engine.Sum, Col: "a",
		Ranges: []engine.Range{{Col: "c1", Lo: 13, Hi: 67}}}
	truth, _ := tbl.Execute(q)
	ans, err := p.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(ans.Estimate.Value-truth.Value) / truth.Value; rel > 0.05 {
		t.Errorf("AQP++ answer off truth by %v", rel)
	}
	if ans.Candidates < 2 {
		t.Errorf("only %d candidates considered", ans.Candidates)
	}
}

func TestAQPPlusPlusBeatsAQP(t *testing.T) {
	// The headline property: with a cube, median CI width over a workload
	// is smaller than plain AQP's on the same sample.
	tbl := testTable(40000, 2)
	p := buildProcessor(t, tbl, []string{"c1"}, 30)
	r := stats.NewRNG(7)
	var aqpErr, ppErr []float64
	for i := 0; i < 60; i++ {
		lo := float64(r.Intn(60) + 1)
		hi := lo + float64(r.Intn(30)+5)
		q := engine.Query{Func: engine.Sum, Col: "a",
			Ranges: []engine.Range{{Col: "c1", Lo: lo, Hi: hi}}}
		ans, err := p.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := aqp.EstimateSum(p.Sample, q, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		ppErr = append(ppErr, ans.Estimate.HalfWidth)
		aqpErr = append(aqpErr, plain.HalfWidth)
	}
	mPP := stats.Median(ppErr)
	mAQP := stats.Median(aqpErr)
	if mPP >= mAQP {
		t.Errorf("AQP++ median ε %v not better than AQP %v", mPP, mAQP)
	}
	// The paper reports ~10x at k=50000 on 2D; at this small scale and
	// k=30 on 1D we still expect a clear win.
	if mAQP/mPP < 1.5 {
		t.Logf("improvement only %.2fx (acceptable at tiny k)", mAQP/mPP)
	}
}

func TestSubsumesAggPre(t *testing.T) {
	// When the query aligns exactly with partition points, the diff is
	// zero and the answer is exact with ε = 0 (§4.2.1 unification).
	tbl := testTable(20000, 3)
	p := buildProcessor(t, tbl, []string{"c1"}, 10)
	// Pick a query exactly spanning partition blocks: use points from the
	// built cube.
	pts := p.Cube.Points[0]
	if len(pts) < 3 {
		t.Skip("not enough points")
	}
	q := engine.Query{Func: engine.Sum, Col: "a",
		Ranges: []engine.Range{{Col: "c1", Lo: pts[0] + 1, Hi: pts[2]}}}
	truth, _ := tbl.Execute(q)
	ans, err := p.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ans.Estimate.Value-truth.Value) > 1e-6*math.Abs(truth.Value) {
		t.Errorf("aligned answer %v != truth %v", ans.Estimate.Value, truth.Value)
	}
	if ans.Estimate.HalfWidth != 0 {
		t.Errorf("aligned ε = %v, want 0", ans.Estimate.HalfWidth)
	}
	if ans.Pre.IsPhi() {
		t.Error("φ chosen for an exactly aligned query")
	}
}

func TestSubsumesAQP(t *testing.T) {
	// Without a cube the processor equals plain AQP exactly.
	tbl := testTable(10000, 4)
	s, err := sample.NewUniform(tbl, 0.1, 9)
	if err != nil {
		t.Fatal(err)
	}
	p := &Processor{Sample: s}
	q := engine.Query{Func: engine.Sum, Col: "a",
		Ranges: []engine.Range{{Col: "c1", Lo: 10, Hi: 50}}}
	ans, err := p.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	plain, _ := aqp.EstimateSum(s, q, 0.95)
	if ans.Estimate != plain {
		t.Errorf("no-cube answer %+v != AQP %+v", ans.Estimate, plain)
	}
	if !ans.Pre.IsPhi() {
		t.Error("pre should be φ without a cube")
	}
}

func TestUnbiasedness(t *testing.T) {
	// Lemma 2: AQP++ estimates are unbiased. Average over independent
	// samples with a fixed cube.
	tbl := testTable(10000, 5)
	tmpl := cube.Template{Agg: "a", Dims: []string{"c1"}}
	q := engine.Query{Func: engine.Sum, Col: "a",
		Ranges: []engine.Range{{Col: "c1", Lo: 23, Hi: 71}}}
	truth, _ := tbl.Execute(q)
	var m stats.Moments
	for i := 0; i < 40; i++ {
		p, _, err := Build(context.Background(), tbl, BuildConfig{
			Template: tmpl, SampleRate: 0.03, CellBudget: 10, Seed: uint64(100 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		ans, err := p.Answer(q)
		if err != nil {
			t.Fatal(err)
		}
		m.Add(ans.Estimate.Value)
	}
	if rel := math.Abs(m.Mean()-truth.Value) / truth.Value; rel > 0.02 {
		t.Errorf("mean AQP++ estimate off truth by %v", rel)
	}
}

func TestAnswerCount(t *testing.T) {
	tbl := testTable(20000, 6)
	p, _, err := Build(context.Background(), tbl, BuildConfig{
		Template:   cube.Template{Agg: "", Dims: []string{"c1"}},
		SampleRate: 0.1, CellBudget: 15, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := engine.Query{Func: engine.Count,
		Ranges: []engine.Range{{Col: "c1", Lo: 20, Hi: 60}}}
	truth, _ := tbl.Execute(q)
	ans, err := p.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(ans.Estimate.Value-truth.Value) / truth.Value; rel > 0.05 {
		t.Errorf("COUNT answer off by %v", rel)
	}
}

func TestAnswerAvg(t *testing.T) {
	tbl := testTable(30000, 7)
	p, _, err := Build(context.Background(), tbl, BuildConfig{
		Template:   cube.Template{Agg: "a", Dims: []string{"c1"}},
		SampleRate: 0.1, CellBudget: 20, Seed: 13, WithCountCube: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := engine.Query{Func: engine.Avg, Col: "a",
		Ranges: []engine.Range{{Col: "c1", Lo: 15, Hi: 75}}}
	truth, _ := tbl.Execute(q)
	ans, err := p.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(ans.Estimate.Value-truth.Value) / truth.Value
	if rel > 0.03 {
		t.Errorf("AVG answer off by %v", rel)
	}
	// ε = 0 is only legitimate when both the SUM and COUNT parts aligned
	// exactly with partition points, making the answer exact.
	if ans.Estimate.HalfWidth == 0 && rel > 1e-9 {
		t.Errorf("AVG ε = 0 but answer inexact (rel %v)", rel)
	}
	if ans.Estimate.HalfWidth < 0 {
		t.Error("negative ε")
	}
}

func TestAnswerRejects(t *testing.T) {
	tbl := testTable(1000, 8)
	p := buildProcessor(t, tbl, []string{"c1"}, 5)
	if _, err := p.Answer(engine.Query{Func: engine.Min, Col: "a"}); err == nil {
		t.Error("MIN accepted")
	}
	if _, err := p.Answer(engine.Query{Func: engine.Sum, Col: "a", GroupBy: []string{"g"}}); err == nil {
		t.Error("GROUP BY accepted by Answer")
	}
	if _, err := p.AnswerGroups(context.Background(), engine.Query{Func: engine.Sum, Col: "a"}); err == nil {
		t.Error("AnswerGroups without GROUP BY accepted")
	}
}

func TestAnswerGroups(t *testing.T) {
	tbl := testTable(30000, 9)
	p, _, err := Build(context.Background(), tbl, BuildConfig{
		Template:   cube.Template{Agg: "a", Dims: []string{"c1", "g"}},
		SampleRate: 0.1, CellBudget: 40, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := engine.Query{Func: engine.Sum, Col: "a",
		Ranges:  []engine.Range{{Col: "c1", Lo: 10, Hi: 80}},
		GroupBy: []string{"g"}}
	truthRes, _ := tbl.Execute(q)
	truth := map[string]float64{}
	for _, gr := range truthRes.Groups {
		truth[gr.Key] = gr.Value
	}
	groups, err := p.AnswerGroups(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("groups = %d", len(groups))
	}
	for _, ga := range groups {
		want := truth[ga.Key]
		if rel := math.Abs(ga.Answer.Estimate.Value-want) / want; rel > 0.1 {
			t.Errorf("group %q off by %v", ga.Key, rel)
		}
	}
}

func TestBuildValidation(t *testing.T) {
	tbl := testTable(1000, 10)
	if _, _, err := Build(context.Background(), tbl, BuildConfig{Template: cube.Template{Agg: "a"}, SampleRate: 0.1, CellBudget: 5}); err == nil {
		t.Error("empty dims accepted")
	}
	if _, _, err := Build(context.Background(), tbl, BuildConfig{Template: cube.Template{Agg: "a", Dims: []string{"c1"}}, SampleRate: 0.1}); err == nil {
		t.Error("zero budget accepted")
	}
	if _, _, err := Build(context.Background(), tbl, BuildConfig{Template: cube.Template{Agg: "nope", Dims: []string{"c1"}}, SampleRate: 0.1, CellBudget: 5}); err == nil {
		t.Error("missing column accepted")
	}
}

func TestBuildStats(t *testing.T) {
	tbl := testTable(20000, 11)
	_, st, err := Build(context.Background(), tbl, BuildConfig{
		Template:   cube.Template{Agg: "a", Dims: []string{"c1", "c2"}},
		SampleRate: 0.05, CellBudget: 50, Seed: 19,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.SampleBytes <= 0 || st.CubeBytes <= 0 {
		t.Errorf("stats missing sizes: %+v", st)
	}
	if len(st.Shape) != 2 {
		t.Errorf("shape = %v", st.Shape)
	}
	if st.Shape[0]*st.Shape[1] > 50 {
		t.Errorf("shape %v exceeds budget", st.Shape)
	}
	if st.TotalBytes() != st.SampleBytes+st.CubeBytes {
		t.Error("TotalBytes inconsistent")
	}
	if st.TotalTime() < st.CubeTime {
		t.Error("TotalTime inconsistent")
	}
}

func TestBuild2DAnswers(t *testing.T) {
	tbl := testTable(30000, 12)
	p, _, err := Build(context.Background(), tbl, BuildConfig{
		Template:   cube.Template{Agg: "a", Dims: []string{"c1", "c2"}},
		SampleRate: 0.1, CellBudget: 100, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := engine.Query{Func: engine.Sum, Col: "a", Ranges: []engine.Range{
		{Col: "c1", Lo: 20, Hi: 70},
		{Col: "c2", Lo: 5, Hi: 30},
	}}
	truth, _ := tbl.Execute(q)
	ans, err := p.Answer(q)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(ans.Estimate.Value-truth.Value) / truth.Value; rel > 0.1 {
		t.Errorf("2D answer off by %v", rel)
	}
}

func TestEqualPartitionOnlyAblation(t *testing.T) {
	tbl := testTable(10000, 13)
	pEq, _, err := Build(context.Background(), tbl, BuildConfig{
		Template:   cube.Template{Agg: "a", Dims: []string{"c1"}},
		SampleRate: 0.1, CellBudget: 10, Seed: 29, EqualPartitionOnly: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := engine.Query{Func: engine.Sum, Col: "a",
		Ranges: []engine.Range{{Col: "c1", Lo: 11, Hi: 55}}}
	if _, err := pEq.Answer(q); err != nil {
		t.Fatal(err)
	}
}

func TestPrebuiltSampleReused(t *testing.T) {
	tbl := testTable(10000, 14)
	s, _ := sample.NewUniform(tbl, 0.1, 31)
	p, _, err := Build(context.Background(), tbl, BuildConfig{
		Template:   cube.Template{Agg: "a", Dims: []string{"c1"}},
		CellBudget: 10, Seed: 31,
		PrebuiltSample: s,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Sample != s {
		t.Error("prebuilt sample not reused")
	}
}
