// Package linalg provides the small dense linear-algebra kernel the APA+
// baseline needs: solving the KKT system of an equality-constrained
// least-squares problem. It replaces the commercial QP solver (gurobi)
// the paper used — with only linear equality constraints the optimum has
// a closed form, so an exact dense solve suffices (DESIGN.md
// substitution #4).
package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// MulVec returns m·x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic("linalg: MulVec dimension mismatch")
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// MulTransVec returns mᵀ·x.
func (m *Matrix) MulTransVec(x []float64) []float64 {
	if len(x) != m.Rows {
		panic("linalg: MulTransVec dimension mismatch")
	}
	out := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			out[j] += v * xi
		}
	}
	return out
}

// Gram returns m·mᵀ (Rows×Rows).
func (m *Matrix) Gram() *Matrix {
	g := NewMatrix(m.Rows, m.Rows)
	for i := 0; i < m.Rows; i++ {
		ri := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j := i; j < m.Rows; j++ {
			rj := m.Data[j*m.Cols : (j+1)*m.Cols]
			s := 0.0
			for k := range ri {
				s += ri[k] * rj[k]
			}
			g.Set(i, j, s)
			g.Set(j, i, s)
		}
	}
	return g
}

// Solve solves A·x = b in place (A is destroyed) by Gaussian elimination
// with partial pivoting. A must be square. Singular systems (to within a
// relative pivot tolerance) return an error.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("linalg: Solve needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if len(b) != n {
		return nil, fmt.Errorf("linalg: rhs length %d for %dx%d system", len(b), n, n)
	}
	x := append([]float64(nil), b...)
	// Scale tolerance by the largest magnitude in A.
	maxAbs := 0.0
	for _, v := range a.Data {
		if av := math.Abs(v); av > maxAbs {
			maxAbs = av
		}
	}
	tol := 1e-12 * math.Max(maxAbs, 1)
	for col := 0; col < n; col++ {
		// Partial pivot.
		p := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a.At(r, col)) > math.Abs(a.At(p, col)) {
				p = r
			}
		}
		if math.Abs(a.At(p, col)) <= tol {
			return nil, fmt.Errorf("linalg: singular system at column %d", col)
		}
		if p != col {
			for j := 0; j < n; j++ {
				a.Data[p*n+j], a.Data[col*n+j] = a.Data[col*n+j], a.Data[p*n+j]
			}
			x[p], x[col] = x[col], x[p]
		}
		inv := 1 / a.At(col, col)
		for r := col + 1; r < n; r++ {
			f := a.At(r, col) * inv
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				a.Data[r*n+j] -= f * a.Data[col*n+j]
			}
			x[r] -= f * x[col]
		}
	}
	for col := n - 1; col >= 0; col-- {
		s := x[col]
		for j := col + 1; j < n; j++ {
			s -= a.At(col, j) * x[j]
		}
		x[col] = s / a.At(col, col)
	}
	return x, nil
}

// LeastSquaresWithConstraints solves
//
//	min_w ||w - w0||²  s.t.  B·w = f
//
// via the KKT conditions: w = w0 + Bᵀλ with (B·Bᵀ)λ = f − B·w0. When the
// Gram matrix is singular (redundant constraints), a small ridge is added
// to the diagonal, which projects onto the consistent subspace.
func LeastSquaresWithConstraints(b *Matrix, w0, f []float64) ([]float64, error) {
	if len(w0) != b.Cols {
		return nil, fmt.Errorf("linalg: w0 length %d for %d columns", len(w0), b.Cols)
	}
	if len(f) != b.Rows {
		return nil, fmt.Errorf("linalg: f length %d for %d constraints", len(f), b.Rows)
	}
	rhs := b.MulVec(w0)
	for i := range rhs {
		rhs[i] = f[i] - rhs[i]
	}
	g := b.Gram()
	lambda, err := Solve(g, rhs)
	if err != nil {
		// Redundant constraints: regularize. Rebuild the Gram matrix
		// (Solve destroyed it) with a ridge proportional to its trace.
		g = b.Gram()
		trace := 0.0
		for i := 0; i < g.Rows; i++ {
			trace += g.At(i, i)
		}
		ridge := 1e-9 * math.Max(trace/float64(g.Rows), 1)
		for i := 0; i < g.Rows; i++ {
			g.Set(i, i, g.At(i, i)+ridge)
		}
		lambda, err = Solve(g, rhs)
		if err != nil {
			return nil, err
		}
	}
	adj := b.MulTransVec(lambda)
	w := make([]float64, len(w0))
	for i := range w {
		w[i] = w0[i] + adj[i]
	}
	return w, nil
}
