package linalg

import (
	"math"
	"testing"

	"aqppp/internal/stats"
)

func TestSolveKnownSystem(t *testing.T) {
	a := NewMatrix(3, 3)
	vals := [][]float64{{2, 1, -1}, {-3, -1, 2}, {-2, 1, 2}}
	for i := range vals {
		for j := range vals[i] {
			a.Set(i, j, vals[i][j])
		}
	}
	x, err := Solve(a, []float64{8, -11, -3})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-10 {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestSolveRandomRoundTrip(t *testing.T) {
	r := stats.NewRNG(5)
	for trial := 0; trial < 20; trial++ {
		n := r.Intn(8) + 1
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = r.NormFloat64()
		}
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = r.NormFloat64()
		}
		b := a.MulVec(xTrue)
		cp := NewMatrix(n, n)
		copy(cp.Data, a.Data)
		x, err := Solve(cp, b)
		if err != nil {
			continue // singular random draws are legal to reject
		}
		for i := range x {
			if math.Abs(x[i]-xTrue[i]) > 1e-6 {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, x[i], xTrue[i])
			}
		}
	}
}

func TestSolveSingular(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := Solve(a, []float64{1, 2}); err == nil {
		t.Error("singular matrix accepted")
	}
}

func TestSolveValidation(t *testing.T) {
	if _, err := Solve(NewMatrix(2, 3), []float64{1, 2}); err == nil {
		t.Error("non-square accepted")
	}
	if _, err := Solve(NewMatrix(2, 2), []float64{1}); err == nil {
		t.Error("short rhs accepted")
	}
}

func TestMulVecTransVec(t *testing.T) {
	m := NewMatrix(2, 3)
	// [1 2 3; 4 5 6]
	for i, v := range []float64{1, 2, 3, 4, 5, 6} {
		m.Data[i] = v
	}
	got := m.MulVec([]float64{1, 1, 1})
	if got[0] != 6 || got[1] != 15 {
		t.Errorf("MulVec = %v", got)
	}
	gt := m.MulTransVec([]float64{1, 1})
	if gt[0] != 5 || gt[1] != 7 || gt[2] != 9 {
		t.Errorf("MulTransVec = %v", gt)
	}
}

func TestGram(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Data = []float64{1, 2, 3, 4}
	g := m.Gram()
	// [1 2; 3 4]·[1 3; 2 4] = [5 11; 11 25]
	if g.At(0, 0) != 5 || g.At(0, 1) != 11 || g.At(1, 0) != 11 || g.At(1, 1) != 25 {
		t.Errorf("Gram = %v", g.Data)
	}
}

func TestConstrainedLeastSquares(t *testing.T) {
	// min ||w - w0||² s.t. w1 + w2 = 10; w0 = (1, 1) → w = (5, 5).
	b := NewMatrix(1, 2)
	b.Data = []float64{1, 1}
	w, err := LeastSquaresWithConstraints(b, []float64{1, 1}, []float64{10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w[0]-5) > 1e-9 || math.Abs(w[1]-5) > 1e-9 {
		t.Errorf("w = %v, want (5, 5)", w)
	}
}

func TestConstrainedLeastSquaresSatisfiesConstraints(t *testing.T) {
	r := stats.NewRNG(9)
	for trial := 0; trial < 10; trial++ {
		n := 40
		m := 4
		b := NewMatrix(m, n)
		for i := range b.Data {
			b.Data[i] = r.Float64()
		}
		w0 := make([]float64, n)
		for i := range w0 {
			w0[i] = 1 + r.Float64()
		}
		f := make([]float64, m)
		for i := range f {
			f[i] = 10 + 5*r.Float64()
		}
		w, err := LeastSquaresWithConstraints(b, w0, f)
		if err != nil {
			t.Fatal(err)
		}
		got := b.MulVec(w)
		for i := range f {
			if math.Abs(got[i]-f[i]) > 1e-6 {
				t.Fatalf("trial %d: constraint %d: %v != %v", trial, i, got[i], f[i])
			}
		}
	}
}

func TestConstrainedLeastSquaresRedundantConstraints(t *testing.T) {
	// Duplicate constraints make the Gram matrix singular; the ridge
	// fallback must still satisfy them.
	b := NewMatrix(2, 3)
	b.Data = []float64{1, 1, 1, 1, 1, 1}
	w, err := LeastSquaresWithConstraints(b, []float64{0, 0, 0}, []float64{6, 6})
	if err != nil {
		t.Fatal(err)
	}
	sum := w[0] + w[1] + w[2]
	if math.Abs(sum-6) > 1e-3 {
		t.Errorf("redundant constraints violated: sum = %v", sum)
	}
}

func TestConstrainedLeastSquaresValidation(t *testing.T) {
	b := NewMatrix(1, 2)
	if _, err := LeastSquaresWithConstraints(b, []float64{1}, []float64{1}); err == nil {
		t.Error("short w0 accepted")
	}
	if _, err := LeastSquaresWithConstraints(b, []float64{1, 2}, nil); err == nil {
		t.Error("short f accepted")
	}
}

func TestMulVecPanics(t *testing.T) {
	m := NewMatrix(2, 2)
	for _, f := range []func(){
		func() { m.MulVec([]float64{1}) },
		func() { m.MulTransVec([]float64{1, 2, 3}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
