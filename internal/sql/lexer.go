// Package sql is a small SQL front end for the supported dialect:
//
//	SELECT <agg>(<col>|*) FROM <table>
//	  [WHERE <cond> [AND <cond>]...]
//	  [GROUP BY <col> [, <col>]...]
//
// where <agg> ∈ {SUM, COUNT, AVG, VAR, MIN, MAX} and each <cond> is one of
// `col BETWEEN a AND b`, `col <op> value` (op ∈ {=, <, <=, >, >=}), with
// numeric or 'single-quoted' string literals. Statements compile into
// engine.Query values against a concrete table (string literals resolve
// to dictionary ordinals at compile time).
//
// The paper drives a commercial engine over ODBC with exactly this query
// class; this package gives the reproduction the same surface.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexer token types.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // ( ) , * = < > <= >=
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

// lex tokenizes the input or reports the offending position.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case isIdentStart(rune(c)):
			j := i + 1
			for j < n && isIdentPart(rune(input[j])) {
				j++
			}
			toks = append(toks, token{tokIdent, input[i:j], i})
			i = j
		case c >= '0' && c <= '9' || c == '.' && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9':
			j := i
			seenDot := false
			for j < n {
				d := input[j]
				if d >= '0' && d <= '9' {
					j++
				} else if d == '.' && !seenDot {
					seenDot = true
					j++
				} else if (d == 'e' || d == 'E') && j+1 < n {
					j++
					if input[j] == '+' || input[j] == '-' {
						j++
					}
				} else {
					break
				}
			}
			toks = append(toks, token{tokNumber, input[i:j], i})
			i = j
		case c == '-':
			// Unary minus glues to a following number.
			if i+1 < n && (input[i+1] >= '0' && input[i+1] <= '9' || input[i+1] == '.') {
				j := i + 1
				seenDot := false
				for j < n {
					d := input[j]
					if d >= '0' && d <= '9' {
						j++
					} else if d == '.' && !seenDot {
						seenDot = true
						j++
					} else {
						break
					}
				}
				toks = append(toks, token{tokNumber, input[i:j], i})
				i = j
			} else {
				return nil, fmt.Errorf("sql: unexpected '-' at position %d", i)
			}
		case c == '\'':
			j := i + 1
			var sb strings.Builder
			for {
				if j >= n {
					return nil, fmt.Errorf("sql: unterminated string at position %d", i)
				}
				if input[j] == '\'' {
					if j+1 < n && input[j+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				sb.WriteByte(input[j])
				j++
			}
			toks = append(toks, token{tokString, sb.String(), i})
			i = j + 1
		case c == '<' || c == '>':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, token{tokSymbol, input[i : i+2], i})
				i += 2
			} else {
				toks = append(toks, token{tokSymbol, string(c), i})
				i++
			}
		case c == '(' || c == ')' || c == ',' || c == '*' || c == '=':
			toks = append(toks, token{tokSymbol, string(c), i})
			i++
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at position %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	// '.' is permitted inside identifiers so columns produced by
	// engine.HashJoinFK ("supplier.rating") stay addressable from SQL;
	// numeric literals are unaffected because identifiers cannot start
	// with a digit.
	return r == '_' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
