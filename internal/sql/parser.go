package sql

import (
	"fmt"
	"strconv"
	"strings"

	"aqppp/internal/engine"
)

// Statement is the parsed form of a supported SELECT.
type Statement struct {
	Agg     engine.AggFunc
	Col     string // "*" for COUNT(*)
	Table   string
	Conds   []Cond
	GroupBy []string
}

// Cond is one WHERE conjunct.
type Cond struct {
	Col string
	// Op is one of "=", "<", "<=", ">", ">=", "between".
	Op  string
	Val Value
	// Val2 is BETWEEN's upper bound.
	Val2 Value
}

// Value is a literal.
type Value struct {
	IsString bool
	Str      string
	Num      float64
}

func (v Value) String() string {
	if v.IsString {
		return "'" + v.Str + "'"
	}
	return strconv.FormatFloat(v.Num, 'g', -1, 64)
}

// parser walks the token stream.
type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if t.kind != tokIdent || !strings.EqualFold(t.text, kw) {
		return fmt.Errorf("sql: expected %s, got %q (position %d)", kw, t.text, t.pos)
	}
	return nil
}

func (p *parser) expectSymbol(s string) error {
	t := p.next()
	if t.kind != tokSymbol || t.text != s {
		return fmt.Errorf("sql: expected %q, got %q (position %d)", s, t.text, t.pos)
	}
	return nil
}

// Parse parses one statement.
func Parse(input string) (*Statement, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st := &Statement{}
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	aggTok := p.next()
	if aggTok.kind != tokIdent {
		return nil, fmt.Errorf("sql: expected aggregate function, got %q", aggTok.text)
	}
	switch strings.ToUpper(aggTok.text) {
	case "SUM":
		st.Agg = engine.Sum
	case "COUNT":
		st.Agg = engine.Count
	case "AVG":
		st.Agg = engine.Avg
	case "VAR":
		st.Agg = engine.Var
	case "MIN":
		st.Agg = engine.Min
	case "MAX":
		st.Agg = engine.Max
	default:
		return nil, fmt.Errorf("sql: unsupported aggregate %q", aggTok.text)
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	colTok := p.next()
	switch {
	case colTok.kind == tokIdent:
		st.Col = colTok.text
	case colTok.kind == tokSymbol && colTok.text == "*":
		if st.Agg != engine.Count {
			return nil, fmt.Errorf("sql: %s(*) is not supported", strings.ToUpper(aggTok.text))
		}
		st.Col = "*"
	default:
		return nil, fmt.Errorf("sql: expected column or *, got %q", colTok.text)
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	tblTok := p.next()
	if tblTok.kind != tokIdent {
		return nil, fmt.Errorf("sql: expected table name, got %q", tblTok.text)
	}
	st.Table = tblTok.text

	if t := p.peek(); t.kind == tokIdent && strings.EqualFold(t.text, "WHERE") {
		p.next()
		for {
			c, err := p.parseCond()
			if err != nil {
				return nil, err
			}
			st.Conds = append(st.Conds, c)
			if t := p.peek(); t.kind == tokIdent && strings.EqualFold(t.text, "AND") {
				p.next()
				continue
			}
			break
		}
	}
	if t := p.peek(); t.kind == tokIdent && strings.EqualFold(t.text, "GROUP") {
		p.next()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			g := p.next()
			if g.kind != tokIdent {
				return nil, fmt.Errorf("sql: expected group-by column, got %q", g.text)
			}
			st.GroupBy = append(st.GroupBy, g.text)
			if t := p.peek(); t.kind == tokSymbol && t.text == "," {
				p.next()
				continue
			}
			break
		}
	}
	if t := p.peek(); t.kind != tokEOF {
		return nil, fmt.Errorf("sql: unexpected trailing input %q at position %d", t.text, t.pos)
	}
	return st, nil
}

func (p *parser) parseCond() (Cond, error) {
	colTok := p.next()
	if colTok.kind != tokIdent {
		return Cond{}, fmt.Errorf("sql: expected condition column, got %q", colTok.text)
	}
	c := Cond{Col: colTok.text}
	opTok := p.next()
	if opTok.kind == tokIdent && strings.EqualFold(opTok.text, "BETWEEN") {
		c.Op = "between"
		v1, err := p.parseValue()
		if err != nil {
			return Cond{}, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return Cond{}, err
		}
		v2, err := p.parseValue()
		if err != nil {
			return Cond{}, err
		}
		c.Val, c.Val2 = v1, v2
		return c, nil
	}
	if opTok.kind != tokSymbol {
		return Cond{}, fmt.Errorf("sql: expected operator, got %q", opTok.text)
	}
	switch opTok.text {
	case "=", "<", "<=", ">", ">=":
		c.Op = opTok.text
	default:
		return Cond{}, fmt.Errorf("sql: unsupported operator %q", opTok.text)
	}
	v, err := p.parseValue()
	if err != nil {
		return Cond{}, err
	}
	c.Val = v
	return c, nil
}

func (p *parser) parseValue() (Value, error) {
	t := p.next()
	switch t.kind {
	case tokNumber:
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return Value{}, fmt.Errorf("sql: bad number %q: %v", t.text, err)
		}
		return Value{Num: f}, nil
	case tokString:
		return Value{IsString: true, Str: t.text}, nil
	default:
		return Value{}, fmt.Errorf("sql: expected literal, got %q", t.text)
	}
}
