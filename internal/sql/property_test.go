package sql

import (
	"fmt"
	"math"
	"testing"

	"aqppp/internal/engine"
	"aqppp/internal/stats"
)

// TestRandomStatementsAgreeWithDirectQueries generates random statements
// over a random table, round-trips them through the parser/compiler, and
// checks the result equals executing the equivalent hand-built query.
func TestRandomStatementsAgreeWithDirectQueries(t *testing.T) {
	r := stats.NewRNG(2718)
	n := 3000
	ints := make([]int64, n)
	floats := make([]float64, n)
	strs := make([]string, n)
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	for i := 0; i < n; i++ {
		ints[i] = int64(r.Intn(100) + 1)
		floats[i] = math.Floor(r.Float64()*1000) / 10
		strs[i] = words[r.Intn(len(words))]
	}
	tbl := engine.MustNewTable("rt",
		engine.NewIntColumn("i", ints),
		engine.NewFloatColumn("f", floats),
		engine.NewStringColumn("s", strs),
	)
	aggs := []struct {
		name string
		fn   engine.AggFunc
	}{{"SUM", engine.Sum}, {"COUNT", engine.Count}, {"AVG", engine.Avg}, {"MIN", engine.Min}, {"MAX", engine.Max}}
	for trial := 0; trial < 120; trial++ {
		agg := aggs[r.Intn(len(aggs))]
		col := "f"
		colSQL := "f"
		if agg.fn == engine.Count {
			colSQL = "*"
		}
		lo := r.Intn(90) + 1
		hi := lo + r.Intn(20)
		word := words[r.Intn(len(words))]
		stmt := fmt.Sprintf("SELECT %s(%s) FROM rt WHERE i BETWEEN %d AND %d AND s >= '%s'",
			agg.name, colSQL, lo, hi, word)
		q, err := ParseAndCompile(stmt, tbl)
		if err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
		got, err := tbl.Execute(q)
		if err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
		// Hand-built equivalent: word's rank as the lower string bound.
		rank := 0
		sorted := append([]string(nil), words...)
		for i := 1; i < len(sorted); i++ {
			for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			}
		}
		for i, w := range sorted {
			if w == word {
				rank = i
			}
		}
		direct := engine.Query{Func: agg.fn, Col: col, Ranges: []engine.Range{
			{Col: "i", Lo: float64(lo), Hi: float64(hi)},
			{Col: "s", Lo: float64(rank), Hi: float64(len(words) - 1)},
		}}
		if agg.fn == engine.Count {
			direct.Col = ""
		}
		want, err := tbl.Execute(direct)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got.Value-want.Value) > 1e-9*math.Max(math.Abs(want.Value), 1) {
			t.Fatalf("%s: compiled %v != direct %v", stmt, got.Value, want.Value)
		}
	}
}

// TestParseIsDeterministic re-parses the same statement and compares the
// structures.
func TestParseIsDeterministic(t *testing.T) {
	stmt := "SELECT SUM(a) FROM t WHERE x BETWEEN 1 AND 5 AND y = 'z' GROUP BY g"
	a, err := Parse(stmt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
		t.Error("parse not deterministic")
	}
}

// TestLexerNeverPanics throws byte noise at the lexer; it must error, not
// panic.
func TestLexerNeverPanics(t *testing.T) {
	r := stats.NewRNG(3141)
	for trial := 0; trial < 500; trial++ {
		n := r.Intn(60)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = byte(r.Intn(128))
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("lexer panicked on %q: %v", buf, p)
				}
			}()
			_, _ = lex(string(buf))
		}()
	}
}

// TestParserNeverPanics fuzzes the parser with token-shaped noise.
func TestParserNeverPanics(t *testing.T) {
	r := stats.NewRNG(1618)
	words := []string{"SELECT", "SUM", "FROM", "WHERE", "AND", "BETWEEN",
		"GROUP", "BY", "(", ")", ",", "*", "=", "<", ">=", "t", "col", "5", "'s'"}
	for trial := 0; trial < 500; trial++ {
		stmt := ""
		for i := 0; i < r.Intn(12); i++ {
			stmt += words[r.Intn(len(words))] + " "
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("parser panicked on %q: %v", stmt, p)
				}
			}()
			_, _ = Parse(stmt)
		}()
	}
}
