package sql

import (
	"math"
	"testing"

	"aqppp/internal/engine"
)

func testTable() *engine.Table {
	return engine.MustNewTable("sales",
		engine.NewIntColumn("id", []int64{1, 2, 3, 4, 5, 6}),
		engine.NewFloatColumn("amount", []float64{10, 20, 30, 40, 50, 60}),
		engine.NewStringColumn("region", []string{"west", "east", "west", "north", "east", "south"}),
	)
}

func mustExec(t *testing.T, stmt string) float64 {
	t.Helper()
	tbl := testTable()
	q, err := ParseAndCompile(stmt, tbl)
	if err != nil {
		t.Fatalf("%s: %v", stmt, err)
	}
	res, err := tbl.Execute(q)
	if err != nil {
		t.Fatalf("%s: %v", stmt, err)
	}
	return res.Value
}

func TestParseBasic(t *testing.T) {
	st, err := Parse("SELECT SUM(amount) FROM sales WHERE id BETWEEN 2 AND 4")
	if err != nil {
		t.Fatal(err)
	}
	if st.Agg != engine.Sum || st.Col != "amount" || st.Table != "sales" {
		t.Errorf("parsed %+v", st)
	}
	if len(st.Conds) != 1 || st.Conds[0].Op != "between" {
		t.Errorf("conds = %+v", st.Conds)
	}
}

func TestEndToEndQueries(t *testing.T) {
	cases := []struct {
		stmt string
		want float64
	}{
		{"SELECT SUM(amount) FROM sales", 210},
		{"SELECT COUNT(*) FROM sales", 6},
		{"SELECT AVG(amount) FROM sales", 35},
		{"SELECT MIN(amount) FROM sales", 10},
		{"SELECT MAX(amount) FROM sales", 60},
		{"SELECT SUM(amount) FROM sales WHERE id BETWEEN 2 AND 4", 90},
		{"SELECT SUM(amount) FROM sales WHERE id >= 5", 110},
		{"SELECT SUM(amount) FROM sales WHERE id > 5", 60},
		{"SELECT SUM(amount) FROM sales WHERE id <= 2", 30},
		{"SELECT SUM(amount) FROM sales WHERE id < 2", 10},
		{"SELECT SUM(amount) FROM sales WHERE id = 3", 30},
		{"SELECT SUM(amount) FROM sales WHERE id >= 2 AND id <= 3", 50},
		{"SELECT SUM(amount) FROM sales WHERE region = 'west'", 40},
		{"SELECT SUM(amount) FROM sales WHERE region = 'nowhere'", 0},
		{"SELECT SUM(amount) FROM sales WHERE amount > 35 AND id < 6", 90},
		{"SELECT COUNT(amount) FROM sales WHERE region >= 'south'", 3},
		{"SELECT SUM(amount) FROM sales WHERE amount BETWEEN 15 AND 45", 90},
	}
	for _, c := range cases {
		if got := mustExec(t, c.stmt); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s = %v, want %v", c.stmt, got, c.want)
		}
	}
}

func TestGroupByCompile(t *testing.T) {
	tbl := testTable()
	q, err := ParseAndCompile("SELECT SUM(amount) FROM sales GROUP BY region", tbl)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tbl.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 4 {
		t.Errorf("groups = %+v", res.Groups)
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	if got := mustExec(t, "select sum(amount) from sales where id between 1 and 2"); got != 30 {
		t.Errorf("lowercase query = %v", got)
	}
}

func TestStringEscapes(t *testing.T) {
	tbl := engine.MustNewTable("t",
		engine.NewStringColumn("s", []string{"it's", "plain"}),
		engine.NewFloatColumn("v", []float64{1, 2}),
	)
	q, err := ParseAndCompile("SELECT SUM(v) FROM t WHERE s = 'it''s'", tbl)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := tbl.Execute(q)
	if res.Value != 1 {
		t.Errorf("escaped string matched %v", res.Value)
	}
}

func TestNegativeNumbers(t *testing.T) {
	tbl := engine.MustNewTable("t",
		engine.NewIntColumn("x", []int64{-5, -1, 0, 3}),
		engine.NewFloatColumn("v", []float64{1, 2, 4, 8}),
	)
	q, err := ParseAndCompile("SELECT SUM(v) FROM t WHERE x >= -1 AND x <= 0", tbl)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := tbl.Execute(q)
	if res.Value != 6 {
		t.Errorf("negative bounds sum = %v", res.Value)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FOO(a) FROM t",
		"SELECT SUM(*) FROM t",
		"SELECT SUM(a FROM t",
		"SELECT SUM(a) WHERE x = 1",
		"SELECT SUM(a) FROM t WHERE",
		"SELECT SUM(a) FROM t WHERE x",
		"SELECT SUM(a) FROM t WHERE x ** 1",
		"SELECT SUM(a) FROM t WHERE x BETWEEN 1",
		"SELECT SUM(a) FROM t WHERE x BETWEEN 1 OR 2",
		"SELECT SUM(a) FROM t GROUP",
		"SELECT SUM(a) FROM t GROUP BY",
		"SELECT SUM(a) FROM t trailing junk",
		"SELECT SUM(a) FROM t WHERE s = 'unterminated",
	}
	for _, stmt := range bad {
		if _, err := Parse(stmt); err == nil {
			t.Errorf("accepted: %s", stmt)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	tbl := testTable()
	bad := []string{
		"SELECT SUM(nope) FROM sales",
		"SELECT SUM(amount) FROM wrongtable",
		"SELECT SUM(amount) FROM sales WHERE nope = 1",
		"SELECT SUM(amount) FROM sales WHERE region = 5",
		"SELECT SUM(amount) FROM sales WHERE id = 'x'",
		"SELECT SUM(amount) FROM sales GROUP BY nope",
	}
	for _, stmt := range bad {
		st, err := Parse(stmt)
		if err != nil {
			t.Fatalf("parse failed unexpectedly: %s: %v", stmt, err)
		}
		if _, err := Compile(st, tbl); err == nil {
			t.Errorf("compiled: %s", stmt)
		}
	}
}

func TestStringRangeSemantics(t *testing.T) {
	// region < 'north' selects only 'east'; region > 'north' selects
	// south and west.
	if got := mustExec(t, "SELECT COUNT(*) FROM sales WHERE region < 'north'"); got != 2 {
		t.Errorf("< 'north' count = %v, want 2 (two east rows)", got)
	}
	if got := mustExec(t, "SELECT COUNT(*) FROM sales WHERE region > 'north'"); got != 3 {
		t.Errorf("> 'north' count = %v, want 3", got)
	}
	// Absent literal between dictionary entries.
	if got := mustExec(t, "SELECT COUNT(*) FROM sales WHERE region > 'f'"); got != 4 {
		t.Errorf("> 'f' count = %v, want 4 (all but east)", got)
	}
	if got := mustExec(t, "SELECT COUNT(*) FROM sales WHERE region < 'f'"); got != 2 {
		t.Errorf("< 'f' count = %v, want 2", got)
	}
}

func TestFloatStrictComparison(t *testing.T) {
	if got := mustExec(t, "SELECT COUNT(*) FROM sales WHERE amount > 30"); got != 3 {
		t.Errorf("amount > 30 count = %v", got)
	}
	if got := mustExec(t, "SELECT COUNT(*) FROM sales WHERE amount < 30.5"); got != 3 {
		t.Errorf("amount < 30.5 count = %v", got)
	}
}
