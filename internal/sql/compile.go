package sql

import (
	"fmt"
	"math"
	"sort"

	"aqppp/internal/engine"
)

// Compile lowers a parsed statement onto a concrete table, resolving
// string literals to dictionary ordinals and merging per-column
// conditions into intersected ordinal ranges.
func Compile(st *Statement, tbl *engine.Table) (engine.Query, error) {
	if st.Table != tbl.Name {
		return engine.Query{}, fmt.Errorf("sql: statement targets table %q, got %q", st.Table, tbl.Name)
	}
	q := engine.Query{Func: st.Agg, GroupBy: st.GroupBy}
	if st.Col != "*" {
		if !tbl.HasColumn(st.Col) {
			return engine.Query{}, fmt.Errorf("sql: unknown column %q", st.Col)
		}
		q.Col = st.Col
	}
	for _, g := range st.GroupBy {
		if !tbl.HasColumn(g) {
			return engine.Query{}, fmt.Errorf("sql: unknown group-by column %q", g)
		}
	}
	// Merge conditions per column.
	type bounds struct {
		lo, hi float64
		seen   bool
	}
	acc := map[string]*bounds{}
	var order []string
	for _, c := range st.Conds {
		col, err := tbl.Column(c.Col)
		if err != nil {
			return engine.Query{}, err
		}
		lo, hi, err := condBounds(col, c)
		if err != nil {
			return engine.Query{}, err
		}
		b, ok := acc[c.Col]
		if !ok {
			b = &bounds{lo: math.Inf(-1), hi: math.Inf(1)}
			acc[c.Col] = b
			order = append(order, c.Col)
		}
		if lo > b.lo {
			b.lo = lo
		}
		if hi < b.hi {
			b.hi = hi
		}
		b.seen = true
	}
	for _, name := range order {
		b := acc[name]
		lo, hi := b.lo, b.hi
		if math.IsInf(lo, -1) {
			domLo, _ := tbl.MustColumn(name).OrdinalDomain()
			lo = domLo
		}
		if math.IsInf(hi, 1) {
			_, domHi := tbl.MustColumn(name).OrdinalDomain()
			hi = domHi
		}
		q.Ranges = append(q.Ranges, engine.Range{Col: name, Lo: lo, Hi: hi})
	}
	return q, nil
}

// condBounds translates one conjunct into an inclusive ordinal range.
func condBounds(col *engine.Column, c Cond) (float64, float64, error) {
	switch c.Op {
	case "between":
		lo, err := valueOrdinal(col, c.Val, boundLower)
		if err != nil {
			return 0, 0, err
		}
		hi, err := valueOrdinal(col, c.Val2, boundUpper)
		if err != nil {
			return 0, 0, err
		}
		return lo, hi, nil
	case "=":
		lo, err := valueOrdinal(col, c.Val, boundLower)
		if err != nil {
			return 0, 0, err
		}
		hi, err := valueOrdinal(col, c.Val, boundUpper)
		if err != nil {
			return 0, 0, err
		}
		return lo, hi, nil
	case "<=":
		hi, err := valueOrdinal(col, c.Val, boundUpper)
		if err != nil {
			return 0, 0, err
		}
		return math.Inf(-1), hi, nil
	case ">=":
		lo, err := valueOrdinal(col, c.Val, boundLower)
		if err != nil {
			return 0, 0, err
		}
		return lo, math.Inf(1), nil
	case "<":
		hi, err := strictBelow(col, c.Val)
		if err != nil {
			return 0, 0, err
		}
		return math.Inf(-1), hi, nil
	case ">":
		lo, err := strictAbove(col, c.Val)
		if err != nil {
			return 0, 0, err
		}
		return lo, math.Inf(1), nil
	default:
		return 0, 0, fmt.Errorf("sql: unknown operator %q", c.Op)
	}
}

type boundSide uint8

const (
	boundLower boundSide = iota
	boundUpper
)

// valueOrdinal maps a literal onto the column's ordinal axis. For string
// columns the ordinal is the value's lexicographic rank among the
// dictionary entries; a missing value resolves to the rank it would
// occupy, with the side deciding whether the (absent) value itself is
// inside the bound — which makes `= 'missing'` an empty range.
func valueOrdinal(col *engine.Column, v Value, side boundSide) (float64, error) {
	if col.Type == engine.String {
		if !v.IsString {
			return 0, fmt.Errorf("sql: numeric literal for string column %q", col.Name)
		}
		rank, exact := stringRank(col, v.Str)
		if exact {
			return float64(rank), nil
		}
		// Absent value: rank is the count of entries below it. As a lower
		// bound the first included entry is `rank`; as an upper bound the
		// last included entry is `rank-1`.
		if side == boundLower {
			return float64(rank), nil
		}
		return float64(rank) - 1, nil
	}
	if v.IsString {
		return 0, fmt.Errorf("sql: string literal for numeric column %q", col.Name)
	}
	return v.Num, nil
}

// strictBelow returns the largest ordinal strictly below the literal.
func strictBelow(col *engine.Column, v Value) (float64, error) {
	if col.Type == engine.String {
		if !v.IsString {
			return 0, fmt.Errorf("sql: numeric literal for string column %q", col.Name)
		}
		rank, _ := stringRank(col, v.Str)
		return float64(rank) - 1, nil
	}
	if v.IsString {
		return 0, fmt.Errorf("sql: string literal for numeric column %q", col.Name)
	}
	if col.Type == engine.Int64 {
		return math.Ceil(v.Num) - 1, nil
	}
	return math.Nextafter(v.Num, math.Inf(-1)), nil
}

// strictAbove returns the smallest ordinal strictly above the literal.
func strictAbove(col *engine.Column, v Value) (float64, error) {
	if col.Type == engine.String {
		if !v.IsString {
			return 0, fmt.Errorf("sql: numeric literal for string column %q", col.Name)
		}
		rank, exact := stringRank(col, v.Str)
		if exact {
			return float64(rank) + 1, nil
		}
		return float64(rank), nil
	}
	if v.IsString {
		return 0, fmt.Errorf("sql: string literal for numeric column %q", col.Name)
	}
	if col.Type == engine.Int64 {
		return math.Floor(v.Num) + 1, nil
	}
	return math.Nextafter(v.Num, math.Inf(1)), nil
}

// stringRank returns the number of dictionary entries lexicographically
// below s, and whether s is itself present.
func stringRank(col *engine.Column, s string) (int, bool) {
	sorted := append([]string(nil), col.Dict...)
	sort.Strings(sorted)
	i := sort.SearchStrings(sorted, s)
	return i, i < len(sorted) && sorted[i] == s
}

// ParseAndCompile is the one-call convenience: parse then compile.
func ParseAndCompile(input string, tbl *engine.Table) (engine.Query, error) {
	st, err := Parse(input)
	if err != nil {
		return engine.Query{}, err
	}
	return Compile(st, tbl)
}
