// Package contract implements a-priori error contracts (the PilotDB
// inversion of AQP++'s budget model): instead of a time budget that
// yields whatever error falls out, the caller states the error it can
// tolerate — {max_error, confidence} — and the planner picks the
// cheapest strategy that provably meets it, or rejects the contract up
// front as infeasible, the same way the admission gate rejects
// infeasible deadlines.
//
// The estimator inverts the CLT half-width formula per aggregate
// family. For SUM/COUNT over a uniform sample the interval is
// hw(n) = λ·sqrt(Var(x)/n) (aqp.SumOfValues), so a pilot answer at
// n₀ rows predicts hw at any n as hw₀·sqrt(n₀/n) and the smallest
// sufficient sample is n ≥ n₀·(hw₀/ε)². AVG's delta-method interval
// carries the same 1/√n scaling through its residual vector, so the
// same inversion applies; MIN/MAX have no sampling estimator at all
// and are served from a precomputed extrema index or an exact scan.
package contract

import (
	"fmt"
	"math"
)

// Contract is an a-priori error bound: the final answer's confidence
// interval half-width must satisfy every bound that is set (> 0), at
// the stated confidence. At least one bound must be set.
type Contract struct {
	// MaxRelError bounds hw/|value| (e.g. 0.01 = 1%).
	MaxRelError float64
	// MaxAbsError bounds hw in the aggregate's own units.
	MaxAbsError float64
	// Confidence is the CI level the bound holds at (default 0.95).
	Confidence float64
	// AllowExact permits escalation to a full exact scan when no
	// sampling strategy can meet the bound. Off by default: an exact
	// scan trivially satisfies any contract, so allowing it silently
	// would hide the infeasibility the caller asked to be told about.
	AllowExact bool
}

// ConfidenceOrDefault resolves the zero value to 0.95.
func (c Contract) ConfidenceOrDefault() float64 {
	if c.Confidence == 0 {
		return 0.95
	}
	return c.Confidence
}

// Validate rejects contracts with no bound, negative bounds, or a
// confidence outside (0, 1).
func (c Contract) Validate() error {
	if c.MaxRelError < 0 || c.MaxAbsError < 0 {
		return fmt.Errorf("contract: error bounds must be non-negative (rel=%v abs=%v)", c.MaxRelError, c.MaxAbsError)
	}
	if c.MaxRelError == 0 && c.MaxAbsError == 0 {
		return fmt.Errorf("contract: at least one of max_rel_error or max_abs_error must be set")
	}
	if conf := c.ConfidenceOrDefault(); conf <= 0 || conf >= 1 {
		return fmt.Errorf("contract: confidence must be in (0,1), got %v", conf)
	}
	return nil
}

// Met reports whether a realized answer (value, halfWidth) satisfies
// every bound the contract sets. The relative bound is evaluated
// against the realized |value|; a zero value meets it only with a
// zero-width interval.
func (c Contract) Met(value, halfWidth float64) bool {
	if c.MaxAbsError > 0 && halfWidth > c.MaxAbsError {
		return false
	}
	if c.MaxRelError > 0 && halfWidth > c.MaxRelError*math.Abs(value) {
		return false
	}
	return true
}

// TargetAbs resolves the contract into one absolute half-width target
// given a conservative magnitude estimate for the answer (a lower
// bound on |value|): the tightest of the set bounds. It returns 0
// when only the relative bound is set and the magnitude is
// indistinguishable from zero — no sampling interval can provably
// meet a relative bound around zero.
func (c Contract) TargetAbs(magnitude float64) float64 {
	eps := math.Inf(1)
	if c.MaxAbsError > 0 {
		eps = c.MaxAbsError
	}
	if c.MaxRelError > 0 {
		if rel := c.MaxRelError * magnitude; rel < eps {
			eps = rel
		}
	}
	return eps
}

// Key renders the contract canonically for folding into a plan cache
// key: exact float bits, so distinct bounds never collide.
func (c Contract) Key() string {
	exact := 0
	if c.AllowExact {
		exact = 1
	}
	return fmt.Sprintf("rel:%x,abs:%x,conf:%x,exact:%d",
		math.Float64bits(c.MaxRelError), math.Float64bits(c.MaxAbsError),
		math.Float64bits(c.ConfidenceOrDefault()), exact)
}

// InfeasibleError reports that no permitted strategy can provably meet
// the contract. It carries the tightest half-width the planner
// predicts it *could* achieve without an exact scan, so clients can
// loosen the contract (or set AllowExact) instead of guessing.
type InfeasibleError struct {
	// Contract is the bound that was asked for.
	Contract Contract
	// TightestAbs is the predicted achievable half-width at the full
	// sample (+Inf when no sampling estimator exists, e.g. MIN/MAX
	// with no extrema index).
	TightestAbs float64
	// TightestRel is TightestAbs over the predicted |value| (+Inf when
	// the predicted value is zero).
	TightestRel float64
	// Reason says which stage gave up ("planner" for the up-front
	// rejection, "runtime" when every rung ran and missed).
	Reason string
}

// Error implements error.
func (e *InfeasibleError) Error() string {
	return fmt.Sprintf("contract infeasible (%s): tightest achievable half-width %.6g (rel %.6g) vs bound rel=%v abs=%v at %v confidence",
		e.Reason, e.TightestAbs, e.TightestRel, e.Contract.MaxRelError, e.Contract.MaxAbsError, e.Contract.ConfidenceOrDefault())
}
