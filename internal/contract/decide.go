package contract

import (
	"fmt"
	"math"

	"aqppp/internal/aqp"
	"aqppp/internal/core"
	"aqppp/internal/engine"
	"aqppp/internal/sample"
)

// Strategy is one answer path the planner can choose, ordered by cost.
type Strategy uint8

const (
	// StrategyCube answers through the standard AQP++ pipeline where
	// the pilot shows the cube covering the query exactly (the §4.2.1
	// unification: diff vector all zero, half-width 0) — or, for
	// MIN/MAX, through a covering extrema index. Effectively free.
	StrategyCube Strategy = iota
	// StrategyApprox answers closed-form AQP++ on the smallest
	// sufficient uniform subset of the prepared sample.
	StrategyApprox
	// StrategyBootstrap answers with an empirical bootstrap interval
	// over the full sample — chosen when the predicate's pilot support
	// is too small to trust the CLT interval.
	StrategyBootstrap
	// StrategyExact scans the full table (only when Contract.AllowExact).
	StrategyExact
)

// String implements fmt.Stringer; the forms are wire-stable (they
// appear in /v1/contract responses).
func (s Strategy) String() string {
	switch s {
	case StrategyCube:
		return "cube"
	case StrategyApprox:
		return "approx"
	case StrategyBootstrap:
		return "bootstrap"
	case StrategyExact:
		return "exact"
	default:
		return fmt.Sprintf("Strategy(%d)", uint8(s))
	}
}

const (
	// safetyFactor pads the inverted sample size against pilot-variance
	// noise: the pilot's Var(x) is itself an estimate.
	safetyFactor = 1.25
	// minPilotRows is the smallest pilot the estimator trusts; below it
	// the full sample plays pilot (still cheap — no table scan).
	minPilotRows = 64
	// minAnswerRows floors the chosen subsample size: CLT intervals at
	// a handful of rows are folklore, not statistics.
	minAnswerRows = 64
	// minCLTSupport is the smallest pilot predicate support for which
	// the closed-form interval is trusted; below it the planner prefers
	// an empirical bootstrap interval.
	minCLTSupport = 32
)

// Decision is the planner's verdict: the cheapest strategy predicted to
// meet the contract, plus the pilot evidence behind it. It is computed
// from prepared state only (sample + cube), never from a table scan,
// so infeasible contracts are rejected before any scan work.
type Decision struct {
	Strategy Strategy
	// SampleRows is the sample subset size the approx rung answers
	// with (the smallest sufficient n from the half-width inversion).
	SampleRows int
	// Resamples is the bootstrap rung's replicate count.
	Resamples int
	// PilotValue/PilotHalfWidth/PilotRows are the pilot answer the
	// inversion extrapolated from.
	PilotValue     float64
	PilotHalfWidth float64
	PilotRows      int
	// Support is the number of pilot rows inside the predicate.
	Support int
	// PredictedHalfWidth is the predicted interval at SampleRows.
	PredictedHalfWidth float64
}

// Rung is one step of the runtime escalation ladder.
type Rung struct {
	Strategy Strategy
	// Rows is the sample subset size for cube/approx rungs.
	Rows int
}

// Ladder returns the runtime escalation sequence starting at the
// decision's strategy: each rung is strictly more expensive, ending at
// exact when the contract allows it. The executor runs rungs in order
// until one's realized interval meets the contract.
func (d Decision) Ladder(fullRows int, allowExact bool) []Rung {
	var rungs []Rung
	switch d.Strategy {
	case StrategyCube:
		// The cube rung already answers on the full sample; a miss
		// means the alignment prediction was wrong, so go empirical.
		rungs = []Rung{{StrategyCube, fullRows}, {StrategyBootstrap, fullRows}}
	case StrategyApprox:
		rungs = []Rung{{StrategyApprox, d.SampleRows}}
		if d.SampleRows < fullRows {
			rungs = append(rungs, Rung{StrategyApprox, fullRows})
		}
		rungs = append(rungs, Rung{StrategyBootstrap, fullRows})
	case StrategyBootstrap:
		rungs = []Rung{{StrategyBootstrap, fullRows}}
	case StrategyExact:
		return []Rung{{StrategyExact, 0}}
	}
	if allowExact {
		rungs = append(rungs, Rung{StrategyExact, 0})
	}
	return rungs
}

// Decide picks the cheapest strategy predicted to meet the contract
// for q against proc's prepared state, or returns *InfeasibleError.
// Only scalar SUM/COUNT/AVG queries have sampling estimators; MIN/MAX
// are served from a covering extrema index (exact) or escalate, and
// GROUP BY is not contractable (each group would need its own bound).
func Decide(proc *core.Processor, q engine.Query, c Contract) (Decision, error) {
	if err := c.Validate(); err != nil {
		return Decision{}, err
	}
	if len(q.GroupBy) > 0 {
		return Decision{}, fmt.Errorf("contract: %w: GROUP BY queries are not contractable", core.ErrUnsupported)
	}
	conf := c.ConfidenceOrDefault()
	switch q.Func {
	case engine.Sum, engine.Count, engine.Avg:
		return decideSampling(proc, q, c, conf)
	default:
		// MIN/MAX/VAR have no closed-form sampling interval. A covering
		// extrema index answers MIN/MAX exactly at precomputation cost.
		if q.Func == engine.Min || q.Func == engine.Max {
			if ans, err := proc.Answer(q); err == nil {
				return Decision{Strategy: StrategyCube, PilotValue: ans.Estimate.Value}, nil
			}
		}
		if c.AllowExact {
			return Decision{Strategy: StrategyExact}, nil
		}
		return Decision{}, &InfeasibleError{
			Contract:    c,
			TightestAbs: math.Inf(1),
			TightestRel: math.Inf(1),
			Reason:      fmt.Sprintf("planner: no sampling estimator for %v and exact escalation is not allowed", q.Func),
		}
	}
}

// decideSampling runs the pilot answer on the identification subsample
// and inverts hw(n) = hw₀·sqrt(n₀/n) to size the cheapest rung.
func decideSampling(proc *core.Processor, q engine.Query, c Contract, conf float64) (Decision, error) {
	pilot := proc.Sub
	if pilot == nil || pilot.Size() < minPilotRows {
		pilot = proc.Sample
	}
	shadow := &core.Processor{
		Sample: pilot, Cube: proc.Cube, CountCube: proc.CountCube,
		MinMax: proc.MinMax, Confidence: conf,
	}
	ans, err := shadow.Answer(q)
	if err != nil {
		return Decision{}, err
	}
	d := Decision{
		PilotValue:     ans.Estimate.Value,
		PilotHalfWidth: ans.Estimate.HalfWidth,
		PilotRows:      pilot.Size(),
	}
	d.Support, err = supportOf(pilot, q)
	if err != nil {
		return Decision{}, err
	}
	nFull := proc.Sample.Size()
	if d.PilotHalfWidth == 0 {
		// The cube covered the query exactly on the pilot (or the whole
		// predicate fell outside the sample); serve through the
		// standard pipeline and let the ladder verify.
		d.Strategy, d.SampleRows = StrategyCube, nFull
		return d, nil
	}
	// Conservative magnitude for the relative bound: the pilot CI's
	// lower bound on |value|. When the pilot CI spans zero that lower
	// bound collapses and would reject every relative contract, however
	// loose — fall back to the point estimate there; the runtime ladder
	// verifies the realized interval anyway, so an optimistic magnitude
	// costs an escalation, never a broken promise.
	magnitude := math.Abs(d.PilotValue) - d.PilotHalfWidth
	if magnitude <= 0 {
		magnitude = math.Abs(d.PilotValue)
	}
	eps := c.TargetAbs(magnitude)
	predFull := d.PilotHalfWidth * math.Sqrt(float64(d.PilotRows)/float64(nFull))
	if eps > 0 && !math.IsInf(eps, 1) {
		need := float64(d.PilotRows) * (d.PilotHalfWidth / eps) * (d.PilotHalfWidth / eps) * safetyFactor
		// Compare in float space: a tight enough bound makes need
		// overflow int, and float→int conversion past the int range is
		// implementation-defined — it must not be allowed to wrap into
		// a small "sufficient" sample size.
		if need <= float64(nFull) {
			nReq := int(math.Ceil(need))
			if nReq < minAnswerRows {
				nReq = minAnswerRows
			}
			if d.Support < minCLTSupport {
				// Too few matching pilot rows to trust the CLT; buy the
				// empirical interval instead.
				d.Strategy, d.SampleRows, d.Resamples = StrategyBootstrap, nFull, core.DefaultResamples
				d.PredictedHalfWidth = predFull
				return d, nil
			}
			if nReq > (nFull*9)/10 {
				nReq = nFull // subsampling overhead isn't worth <10% savings
			}
			d.Strategy, d.SampleRows = StrategyApprox, nReq
			d.PredictedHalfWidth = d.PilotHalfWidth * math.Sqrt(float64(d.PilotRows)/float64(nReq))
			return d, nil
		}
	}
	// No sample size suffices (or the relative bound collapsed around a
	// zero magnitude): exact or infeasible.
	if c.AllowExact {
		d.Strategy = StrategyExact
		return d, nil
	}
	rel := math.Inf(1)
	if d.PilotValue != 0 {
		rel = predFull / math.Abs(d.PilotValue)
	}
	return Decision{}, &InfeasibleError{
		Contract:    c,
		TightestAbs: predFull,
		TightestRel: rel,
		Reason:      "planner: full prepared sample cannot reach the bound and exact escalation is not allowed",
	}
}

// supportOf counts pilot rows inside the query's predicate.
func supportOf(s *sample.Sample, q engine.Query) (int, error) {
	cq := q
	cq.Func = engine.Count
	vals, err := aqp.ConditionVector(s, cq)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, v := range vals {
		if v != 0 {
			n++
		}
	}
	return n, nil
}

// AnswerAt answers q closed-form on a uniform subset of rows drawn
// from proc's sample (the approx/cube rung of the ladder). rows at or
// above the sample size answers on the whole sample. The subset is a
// valid uniform sample of the table in its own right — every row of a
// uniform without-replacement sample carries InvP = N regardless of
// sample size — so the CLT interval needs no reweighting.
func AnswerAt(proc *core.Processor, q engine.Query, rows int, conf float64, seed uint64) (core.Answer, error) {
	s := proc.Sample
	if rows > 0 && rows < s.Size() {
		s = s.Subsample(float64(rows)/float64(s.Size()), seed)
	}
	shadow := &core.Processor{
		Sample: s, Sub: proc.Sub, Cube: proc.Cube, CountCube: proc.CountCube,
		MinMax: proc.MinMax, Confidence: conf,
	}
	if proc.Sub != nil && proc.Sub.Size() > s.Size() {
		shadow.Sub = nil // identification subsample must not outweigh the sample
	}
	return shadow.Answer(q)
}
