package contract

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"aqppp/internal/core"
	"aqppp/internal/cube"
	"aqppp/internal/engine"
	"aqppp/internal/stats"
)

func contractTable(n int, seed uint64) *engine.Table {
	r := stats.NewRNG(seed)
	k := make([]int64, n)
	v := make([]float64, n)
	for i := 0; i < n; i++ {
		k[i] = int64(r.Intn(200) + 1)
		v[i] = 10 + 0.3*float64(k[i]) + 5*r.NormFloat64()
	}
	return engine.MustNewTable("t",
		engine.NewIntColumn("k", k),
		engine.NewFloatColumn("v", v),
	)
}

func contractProcessor(t *testing.T, tbl *engine.Table) *core.Processor {
	t.Helper()
	proc, _, err := core.Build(context.Background(), tbl, core.BuildConfig{
		Template:   cube.Template{Agg: "v", Dims: []string{"k"}},
		SampleRate: 0.2, CellBudget: 64, Seed: 3,
		WithCountCube: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return proc
}

func sumQ(lo, hi float64) engine.Query {
	return engine.Query{Func: engine.Sum, Col: "v",
		Ranges: []engine.Range{{Col: "k", Lo: lo, Hi: hi}}}
}

func TestContractValidate(t *testing.T) {
	cases := []struct {
		name string
		c    Contract
		ok   bool
	}{
		{"rel only", Contract{MaxRelError: 0.05}, true},
		{"abs only", Contract{MaxAbsError: 100}, true},
		{"both", Contract{MaxRelError: 0.05, MaxAbsError: 100}, true},
		{"no bound", Contract{}, false},
		{"negative rel", Contract{MaxRelError: -1}, false},
		{"negative abs", Contract{MaxAbsError: -1}, false},
		{"conf too high", Contract{MaxRelError: 0.05, Confidence: 1}, false},
		{"conf negative", Contract{MaxRelError: 0.05, Confidence: -0.5}, false},
		{"conf ok", Contract{MaxRelError: 0.05, Confidence: 0.99}, true},
	}
	for _, tc := range cases {
		if err := tc.c.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestContractMet(t *testing.T) {
	c := Contract{MaxRelError: 0.01, MaxAbsError: 50}
	if !c.Met(10000, 40) {
		t.Error("hw 40 on 10000 meets rel 1% and abs 50, reported unmet")
	}
	if c.Met(10000, 60) {
		t.Error("hw 60 violates abs 50, reported met")
	}
	if c.Met(1000, 40) {
		t.Error("hw 40 on 1000 violates rel 1%, reported met")
	}
	// A relative bound around zero only admits a zero-width interval.
	zero := Contract{MaxRelError: 0.01}
	if zero.Met(0, 1e-9) {
		t.Error("nonzero hw around zero value met a relative bound")
	}
	if !zero.Met(0, 0) {
		t.Error("zero hw around zero value missed a relative bound")
	}
}

func TestTargetAbs(t *testing.T) {
	c := Contract{MaxRelError: 0.01, MaxAbsError: 50}
	if got := c.TargetAbs(10000); got != 50 {
		t.Errorf("TargetAbs(10000) = %v, want abs bound 50", got)
	}
	if got := c.TargetAbs(100); got != 1 {
		t.Errorf("TargetAbs(100) = %v, want rel bound 1", got)
	}
	if got := (Contract{MaxRelError: 0.01}).TargetAbs(0); got != 0 {
		t.Errorf("rel-only TargetAbs(0) = %v, want 0 (unreachable)", got)
	}
}

func TestContractKeyDistinct(t *testing.T) {
	keys := map[string]Contract{}
	for _, c := range []Contract{
		{MaxRelError: 0.01},
		{MaxRelError: 0.05},
		{MaxAbsError: 0.01},
		{MaxRelError: 0.01, Confidence: 0.99},
		{MaxRelError: 0.01, AllowExact: true},
		{MaxRelError: 0.01, Confidence: 0.95}, // same as default-confidence rel 0.01? no: explicit 0.95 == default
	} {
		keys[c.Key()] = c
	}
	if len(keys) != 5 {
		t.Errorf("got %d distinct keys, want 5 (explicit 0.95 must collide with the default)", len(keys))
	}
	if (Contract{MaxRelError: 0.01}).Key() != (Contract{MaxRelError: 0.01, Confidence: 0.95}).Key() {
		t.Error("default confidence and explicit 0.95 produced different keys")
	}
}

func TestStrategyString(t *testing.T) {
	want := map[Strategy]string{
		StrategyCube: "cube", StrategyApprox: "approx",
		StrategyBootstrap: "bootstrap", StrategyExact: "exact",
	}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%d.String() = %q, want %q (wire-stable)", s, s.String(), w)
		}
	}
}

func TestLadderShapes(t *testing.T) {
	d := Decision{Strategy: StrategyApprox, SampleRows: 500}
	rungs := d.Ladder(1000, false)
	want := []Rung{{StrategyApprox, 500}, {StrategyApprox, 1000}, {StrategyBootstrap, 1000}}
	if len(rungs) != len(want) {
		t.Fatalf("approx ladder = %v, want %v", rungs, want)
	}
	for i := range want {
		if rungs[i] != want[i] {
			t.Errorf("rung %d = %v, want %v", i, rungs[i], want[i])
		}
	}
	// Full-sample approx decisions skip the redundant middle rung.
	rungs = Decision{Strategy: StrategyApprox, SampleRows: 1000}.Ladder(1000, false)
	if len(rungs) != 2 {
		t.Errorf("full-sample approx ladder has %d rungs, want 2", len(rungs))
	}
	// AllowExact appends exactly one exact rung.
	rungs = Decision{Strategy: StrategyCube}.Ladder(1000, true)
	if rungs[len(rungs)-1].Strategy != StrategyExact {
		t.Errorf("allowExact ladder does not end exact: %v", rungs)
	}
	// Exact decisions are a single rung — never preceded by cheaper work.
	rungs = Decision{Strategy: StrategyExact}.Ladder(1000, true)
	if len(rungs) != 1 || rungs[0].Strategy != StrategyExact {
		t.Errorf("exact ladder = %v, want single exact rung", rungs)
	}
}

func TestDecideLooseBound(t *testing.T) {
	tbl := contractTable(20000, 11)
	proc := contractProcessor(t, tbl)
	q := sumQ(50, 150)
	d, err := Decide(proc, q, Contract{MaxRelError: 0.5})
	if err != nil {
		t.Fatalf("loose contract rejected: %v", err)
	}
	if d.Strategy != StrategyApprox && d.Strategy != StrategyCube {
		t.Errorf("loose contract chose %v, want a sampling strategy", d.Strategy)
	}
	if d.Strategy == StrategyApprox {
		if d.SampleRows < minAnswerRows || d.SampleRows > proc.Sample.Size() {
			t.Errorf("SampleRows = %d outside [%d, %d]", d.SampleRows, minAnswerRows, proc.Sample.Size())
		}
		if d.PredictedHalfWidth <= 0 {
			t.Errorf("approx decision with no predicted half-width: %+v", d)
		}
	}
	// A looser bound must never need more rows than a tighter one.
	tight, err := Decide(proc, q, Contract{MaxRelError: 0.05})
	if err == nil && tight.Strategy == StrategyApprox && d.Strategy == StrategyApprox {
		if d.SampleRows > tight.SampleRows {
			t.Errorf("loose bound wants %d rows, tight bound %d — inversion not monotone",
				d.SampleRows, tight.SampleRows)
		}
	}
}

func TestDecideInfeasible(t *testing.T) {
	tbl := contractTable(20000, 12)
	proc := contractProcessor(t, tbl)
	q := sumQ(50, 150)
	_, err := Decide(proc, q, Contract{MaxRelError: 1e-9})
	var inf *InfeasibleError
	if !errors.As(err, &inf) {
		t.Fatalf("impossible bound accepted (err = %v)", err)
	}
	if inf.TightestAbs <= 0 || math.IsInf(inf.TightestAbs, 1) {
		t.Errorf("TightestAbs = %v, want finite positive (a sampling estimator exists)", inf.TightestAbs)
	}
	if !strings.HasPrefix(inf.Reason, "planner:") {
		t.Errorf("Reason = %q, want planner-stage rejection", inf.Reason)
	}
	// The same bound with AllowExact plans an exact scan instead.
	d, err := Decide(proc, q, Contract{MaxRelError: 1e-9, AllowExact: true})
	if err != nil || d.Strategy != StrategyExact {
		t.Errorf("AllowExact: got (%v, %v), want exact strategy", d.Strategy, err)
	}
}

func TestDecideMinMaxNoEstimator(t *testing.T) {
	tbl := contractTable(5000, 13)
	proc := contractProcessor(t, tbl) // no MinMax index
	q := engine.Query{Func: engine.Min, Col: "v"}
	_, err := Decide(proc, q, Contract{MaxRelError: 0.1})
	var inf *InfeasibleError
	if !errors.As(err, &inf) {
		t.Fatalf("MIN with no extrema index accepted (err = %v)", err)
	}
	if !math.IsInf(inf.TightestAbs, 1) {
		t.Errorf("TightestAbs = %v, want +Inf (no sampling estimator)", inf.TightestAbs)
	}
	d, err := Decide(proc, q, Contract{MaxRelError: 0.1, AllowExact: true})
	if err != nil || d.Strategy != StrategyExact {
		t.Errorf("AllowExact MIN: got (%v, %v), want exact", d.Strategy, err)
	}
}

func TestDecideGroupByUnsupported(t *testing.T) {
	tbl := contractTable(5000, 14)
	proc := contractProcessor(t, tbl)
	q := sumQ(50, 150)
	q.GroupBy = []string{"k"}
	_, err := Decide(proc, q, Contract{MaxRelError: 0.1})
	if !errors.Is(err, core.ErrUnsupported) {
		t.Errorf("GROUP BY contract: err = %v, want ErrUnsupported", err)
	}
}

func TestAnswerAtSubsample(t *testing.T) {
	tbl := contractTable(20000, 15)
	proc := contractProcessor(t, tbl)
	q := sumQ(20, 180)
	full, err := AnswerAt(proc, q, 0, 0.95, 1)
	if err != nil {
		t.Fatal(err)
	}
	half, err := AnswerAt(proc, q, proc.Sample.Size()/2, 0.95, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Same estimator on fewer rows: the interval cannot tighten by more
	// than noise, and the estimate must stay in the same ballpark.
	if half.Estimate.HalfWidth < full.Estimate.HalfWidth*0.5 {
		t.Errorf("half-sample hw %v implausibly tighter than full-sample hw %v",
			half.Estimate.HalfWidth, full.Estimate.HalfWidth)
	}
	if full.Estimate.Value == 0 || math.Abs(half.Estimate.Value-full.Estimate.Value) > 0.5*math.Abs(full.Estimate.Value) {
		t.Errorf("half-sample value %v too far from full-sample value %v",
			half.Estimate.Value, full.Estimate.Value)
	}
	// rows >= size answers identically to the plain processor.
	same, err := AnswerAt(proc, q, proc.Sample.Size(), 0.95, 1)
	if err != nil {
		t.Fatal(err)
	}
	if same.Estimate.Value != full.Estimate.Value || same.Estimate.HalfWidth != full.Estimate.HalfWidth {
		t.Error("rows == sample size did not answer on the whole sample")
	}
}

// TestDecideHonorsPrediction is the randomized planner-honesty test:
// across seeded workloads and all three sampling aggregate families,
// every accepted decision's predicted interval must actually satisfy
// the contract's target, and every rejection must carry a usable
// tightest-achievable bound — the planner never accepts a contract it
// cannot defend or rejects one without saying how close it could get.
func TestDecideHonorsPrediction(t *testing.T) {
	tbl := contractTable(30000, 21)
	proc := contractProcessor(t, tbl)
	r := stats.NewRNG(99)
	funcs := []engine.AggFunc{engine.Sum, engine.Count, engine.Avg}
	accepted, rejected := 0, 0
	for i := 0; i < 60; i++ {
		lo := float64(r.Intn(150) + 1)
		hi := lo + float64(r.Intn(50)+5)
		q := engine.Query{Func: funcs[i%len(funcs)], Col: "v",
			Ranges: []engine.Range{{Col: "k", Lo: lo, Hi: hi}}}
		c := Contract{MaxRelError: []float64{0.5, 0.1, 0.02, 1e-8}[r.Intn(4)]}
		d, err := Decide(proc, q, c)
		if err != nil {
			var inf *InfeasibleError
			if !errors.As(err, &inf) {
				t.Fatalf("query %v contract %+v: unexpected error %v", q, c, err)
			}
			if inf.TightestAbs < 0 {
				t.Errorf("rejection carries negative TightestAbs %v", inf.TightestAbs)
			}
			rejected++
			continue
		}
		accepted++
		if d.Strategy == StrategyApprox {
			// The inversion's promise: predicted hw at SampleRows is
			// within the target computed from the pilot's own magnitude.
			magnitude := math.Abs(d.PilotValue) - d.PilotHalfWidth
			if magnitude < 0 {
				magnitude = 0
			}
			if eps := c.TargetAbs(magnitude); d.PredictedHalfWidth > eps*1.0001 {
				t.Errorf("query %v: predicted hw %v exceeds target %v at %d rows",
					q, d.PredictedHalfWidth, eps, d.SampleRows)
			}
		}
		if d.Strategy == StrategyExact {
			t.Errorf("query %v: exact strategy chosen without AllowExact", q)
		}
	}
	if accepted == 0 || rejected == 0 {
		t.Fatalf("workload too one-sided: %d accepted, %d rejected — tune bounds", accepted, rejected)
	}
}
