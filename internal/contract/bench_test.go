package contract

import (
	"context"
	"sync"
	"testing"

	"aqppp/internal/core"
	"aqppp/internal/cube"
	"aqppp/internal/engine"
	"aqppp/internal/stats"
)

// The contract benchmark fixture mirrors the engine benchmarks' scale:
// a 1,048,576-row table with a ~200-key dimension, prepared once at a
// 1% sample (10,486 sample rows). Recorded baselines live in
// BENCH_contract.json; reproduce with:
//
//	go test -run '^$' -bench BenchmarkContract -benchtime 5x ./internal/contract

const benchRows = 1 << 20

var (
	benchOnce sync.Once
	benchTbl  *engine.Table
	benchProc *core.Processor
)

func benchFixture(b *testing.B) (*engine.Table, *core.Processor) {
	b.Helper()
	benchOnce.Do(func() {
		r := stats.NewRNG(17)
		k := make([]int64, benchRows)
		v := make([]float64, benchRows)
		for i := 0; i < benchRows; i++ {
			k[i] = int64(r.Intn(200) + 1)
			v[i] = 10 + 0.3*float64(k[i]) + 5*r.NormFloat64()
		}
		benchTbl = engine.MustNewTable("t",
			engine.NewIntColumn("k", k),
			engine.NewFloatColumn("v", v),
		)
		proc, _, err := core.Build(context.Background(), benchTbl, core.BuildConfig{
			Template:   cube.Template{Agg: "v", Dims: []string{"k"}},
			SampleRate: 0.01, CellBudget: 64, Seed: 3,
		})
		if err != nil {
			panic(err)
		}
		benchProc = proc
	})
	return benchTbl, benchProc
}

var benchQ = engine.Query{Func: engine.Sum, Col: "v",
	Ranges: []engine.Range{{Col: "k", Lo: 40, Hi: 160}}}

// BenchmarkContractDecide measures the planner's overhead: pilot answer
// on the identification subsample plus the half-width inversion. This
// is the cost a contract adds to every uncached plan.
func BenchmarkContractDecide(b *testing.B) {
	_, proc := benchFixture(b)
	c := Contract{MaxRelError: 0.05}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decide(proc, benchQ, c); err != nil {
			b.Fatal(err)
		}
	}
}

// benchmarkAnswerAtTarget answers under a contract at the given
// relative target: Decide once, then time the chosen rung — the cost a
// client actually pays per contract answer.
func benchmarkAnswerAtTarget(b *testing.B, rel float64) {
	_, proc := benchFixture(b)
	d, err := Decide(proc, benchQ, Contract{MaxRelError: rel})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AnswerAt(proc, benchQ, d.SampleRows, 0.95, 7); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkContractAnswerRel1pct is the answer cost at a ±1% contract
// (typically most of the prepared sample).
func BenchmarkContractAnswerRel1pct(b *testing.B) { benchmarkAnswerAtTarget(b, 0.01) }

// BenchmarkContractAnswerRel5pct is the answer cost at a ±5% contract
// (a small sufficient subsample — the planner's saving over a budget
// query that always scans the full sample).
func BenchmarkContractAnswerRel5pct(b *testing.B) { benchmarkAnswerAtTarget(b, 0.05) }

// BenchmarkContractProgressiveRound measures one progressive refinement
// round at the default step (2% of the table): grow the sample, answer
// with the cube anchor.
func BenchmarkContractProgressiveRound(b *testing.B) {
	tbl, proc := benchFixture(b)
	step := benchRows / 50
	prog, err := core.NewProgressive(tbl, proc.Cube, 0.95, 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if prog.SampleSize()+step > benchRows {
			b.StopTimer()
			prog, err = core.NewProgressive(tbl, proc.Cube, 0.95, uint64(i))
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
		prog.Step(step)
		if _, err := prog.Answer(benchQ); err != nil {
			b.Fatal(err)
		}
	}
}
