// Package ident implements aggregate identification (§5 of the paper):
// given a user range query and a BP-Cube, it enumerates the candidate set
// P⁻ of at most 4^d + 1 precomputed aggregates (Equations 6 and 7) and
// selects the one minimizing the estimated query error on a subsample.
package ident

import (
	"fmt"
	"strings"

	"aqppp/internal/aqp"
	"aqppp/internal/cube"
	"aqppp/internal/engine"
	"aqppp/internal/sample"
)

// Pre identifies one precomputed aggregate in P⁺: per cube dimension i the
// half-open ordinal region (Points[i][Lo[i]], Points[i][Hi[i]]], with
// Lo[i] = -1 extending to the start. The empty aggregate φ is represented
// by Phi == true.
type Pre struct {
	Lo, Hi []int
	Phi    bool
}

// IsPhi reports whether the aggregate is the empty query φ (pre(D) = 0),
// in which case AQP++ degenerates to plain AQP.
func (p Pre) IsPhi() bool { return p.Phi }

// String renders the pre in the paper's SUM(x+1:y) index style.
func (p Pre) String() string {
	if p.Phi {
		return "φ"
	}
	var sb strings.Builder
	sb.WriteString("pre[")
	for i := range p.Lo {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d:%d]", p.Lo[i], p.Hi[i])
	}
	sb.WriteString("]")
	return sb.String()
}

// key returns a canonical form for deduplication.
func (p Pre) key() string {
	if p.Phi {
		return "phi"
	}
	var sb strings.Builder
	for i := range p.Lo {
		fmt.Fprintf(&sb, "%d:%d;", p.Lo[i], p.Hi[i])
	}
	return sb.String()
}

// Value returns pre(D), the exact precomputed aggregate, from the cube.
func (p Pre) Value(c *cube.BPCube) float64 {
	if p.Phi {
		return 0
	}
	return c.RangeSum(p.Lo, p.Hi)
}

// Candidates enumerates P⁻ for the query (Equation 7): for every cube
// dimension restricted by the query, the left endpoint brackets {l_x, h_x}
// cross the right endpoint brackets {l_y, h_y}; unrestricted dimensions
// contribute their full range. Degenerate combinations (u_i >= v_i,
// meaning an empty or inverted region) collapse to φ and are dropped; φ
// itself is always included, so plain AQP remains available.
//
// Ranges in the query on columns outside the cube's dimensions do not
// constrain the pre (the framework permits any pre; the diff estimator
// stays unbiased), and multiple ranges on one dimension are intersected.
func Candidates(c *cube.BPCube, q engine.Query) ([]Pre, error) {
	return CandidatesCapped(c, q, DefaultMaxCandidates)
}

// DefaultMaxCandidates bounds |P⁻| for high-dimensional cubes. The exact
// enumeration is 4^d + 1, which is prohibitive past d ≈ 6; beyond the cap
// the dimensions with the widest bracket gaps keep their full 2×2 choice
// and the rest snap each endpoint to its nearest partition point (a
// single choice per side), mirroring the paper's observation that the
// subsampling rate — and hence the identification effort — must shrink as
// 4^d grows (§7.3).
const DefaultMaxCandidates = 4096

// CandidatesCapped is Candidates with an explicit candidate budget
// (maxCandidates <= 0 means unlimited).
func CandidatesCapped(c *cube.BPCube, q engine.Query, maxCandidates int) ([]Pre, error) {
	d := c.Dims()
	left := make([]bracket, d)
	right := make([]bracket, d)
	for i := 0; i < d; i++ {
		left[i].cands = []int{-1}
		right[i].cands = []int{len(c.Points[i]) - 1}
	}
	queryLo := make([]float64, d)
	queryHi := make([]float64, d)
	restricted := make([]bool, d)
	for _, r := range q.Ranges {
		dim := -1
		for i, name := range c.Template.Dims {
			if name == r.Col {
				dim = i
				break
			}
		}
		if dim < 0 {
			continue // non-cube column: pre cannot restrict it
		}
		if r.Lo > r.Hi {
			return nil, fmt.Errorf("ident: inverted range on %q", r.Col)
		}
		lLo, lHi := c.BracketLeft(dim, r.Lo)
		rLo, rHi := c.BracketRight(dim, r.Hi)
		left[dim].cands = dedupInts(lLo, lHi)
		right[dim].cands = dedupInts(rLo, rHi)
		left[dim].gap = bracketGap(c, dim, lLo, lHi)
		right[dim].gap = bracketGap(c, dim, rLo, rHi)
		queryLo[dim], queryHi[dim] = r.Lo, r.Hi
		restricted[dim] = true
	}
	if maxCandidates > 0 {
		total := 1
		over := false
		for i := 0; i < d; i++ {
			total *= len(left[i].cands) * len(right[i].cands)
			if total > maxCandidates {
				over = true
				break
			}
		}
		if over {
			collapseToBudget(c, left, right, queryLo, queryHi, restricted, maxCandidates)
		}
	}

	out := []Pre{{Phi: true}}
	seen := map[string]bool{"phi": true}
	lo := make([]int, d)
	hi := make([]int, d)
	var rec func(i int)
	rec = func(i int) {
		if i == d {
			p := Pre{Lo: append([]int(nil), lo...), Hi: append([]int(nil), hi...)}
			k := p.key()
			if !seen[k] {
				seen[k] = true
				out = append(out, p)
			}
			return
		}
		for _, u := range left[i].cands {
			for _, v := range right[i].cands {
				if u >= v {
					continue // empty region on this dimension → φ
				}
				lo[i], hi[i] = u, v
				rec(i + 1)
			}
		}
	}
	rec(0)
	return out, nil
}

func dedupInts(a, b int) []int {
	if a == b {
		return []int{a}
	}
	return []int{a, b}
}

// bracket holds one endpoint's candidate partition-point indices and the
// ordinal distance between the choices (a large gap means the choice
// matters more under the candidate cap).
type bracket struct {
	cands []int
	gap   float64
}

// bracketGap measures the ordinal spread between two bracket choices; a
// large gap means the choice matters more.
func bracketGap(c *cube.BPCube, dim, a, b int) float64 {
	if a == b {
		return 0
	}
	return pointOrdinal(c, dim, b) - pointOrdinal(c, dim, a)
}

// pointOrdinal returns the ordinal of partition point j, with j = -1
// mapped to a virtual point one average block below the first.
func pointOrdinal(c *cube.BPCube, dim, j int) float64 {
	p := c.Points[dim]
	if j >= 0 {
		return p[j]
	}
	if len(p) > 1 {
		return p[0] - (p[len(p)-1]-p[0])/float64(len(p)-1)
	}
	return p[0] - 1
}

// collapseToBudget shrinks per-dimension bracket choices until the cross
// product fits the budget: dimensions are collapsed in ascending order of
// their bracket gap (least consequential first), each endpoint snapping
// to its nearest partition point.
func collapseToBudget(c *cube.BPCube, left, right []bracket, queryLo, queryHi []float64, restricted []bool, budget int) {
	d := len(left)
	type dimGap struct {
		dim int
		gap float64
	}
	order := make([]dimGap, 0, d)
	for i := 0; i < d; i++ {
		order = append(order, dimGap{dim: i, gap: left[i].gap + right[i].gap})
	}
	// Insertion sort ascending by gap.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && order[j].gap < order[j-1].gap; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	product := func() int {
		total := 1
		for i := 0; i < d; i++ {
			total *= len(left[i].cands) * len(right[i].cands)
			if total > budget {
				return total
			}
		}
		return total
	}
	for _, dg := range order {
		if product() <= budget {
			break
		}
		i := dg.dim
		if !restricted[i] {
			continue
		}
		left[i].cands = []int{nearestChoice(c, i, left[i].cands, queryLo[i])}
		right[i].cands = []int{nearestChoice(c, i, right[i].cands, queryHi[i])}
	}
}

// nearestChoice keeps the bracket index whose partition point lies
// closest to the query endpoint.
func nearestChoice(c *cube.BPCube, dim int, cands []int, endpoint float64) int {
	best := cands[0]
	bestDist := absf(endpoint - pointOrdinal(c, dim, best))
	for _, j := range cands[1:] {
		if dist := absf(endpoint - pointOrdinal(c, dim, j)); dist < bestDist {
			best = j
			bestDist = dist
		}
	}
	return best
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// DiffVector returns per-sample-row contributions
// a_i · (cond_q(i) − cond_pre(i)), the vector whose estimated population
// total is q(D) − pre(D) (Equation 4). COUNT templates use a_i = 1.
func DiffVector(s *sample.Sample, c *cube.BPCube, q engine.Query, pre Pre) ([]float64, error) {
	qVals, err := aqp.ConditionVector(s, q)
	if err != nil {
		return nil, err
	}
	if pre.IsPhi() {
		return qVals, nil
	}
	inPre, err := preMembership(s, c, pre)
	if err != nil {
		return nil, err
	}
	var col *engine.Column
	if q.Func != engine.Count {
		col, err = s.Table.Column(q.Col)
		if err != nil {
			return nil, err
		}
	}
	for i := range qVals {
		if inPre.Get(i) {
			if col != nil {
				qVals[i] -= col.Float(i)
			} else {
				qVals[i] -= 1
			}
		}
	}
	return qVals, nil
}

// preMembership returns the bitset of sample rows inside the pre's region.
func preMembership(s *sample.Sample, c *cube.BPCube, pre Pre) (*engine.Bitset, error) {
	n := s.Size()
	in := engine.NewBitset(n)
	in.SetAll()
	for i, name := range c.Template.Dims {
		col, err := s.Table.Column(name)
		if err != nil {
			return nil, err
		}
		var loOrd float64
		hasLo := pre.Lo[i] >= 0
		if hasLo {
			loOrd = c.Points[i][pre.Lo[i]]
		}
		hiOrd := c.Points[i][pre.Hi[i]]
		cur := engine.NewBitset(n)
		for row := 0; row < n; row++ {
			ord := col.Ordinal(row)
			if ord <= hiOrd && (!hasLo || ord > loOrd) {
				cur.Set(row)
			}
		}
		in.And(cur)
	}
	return in, nil
}

// Selection is the outcome of aggregate identification.
type Selection struct {
	Pre Pre
	// SubsampleError is the estimated query error (CI half-width) of the
	// chosen pre on the scoring subsample.
	SubsampleError float64
	// Considered is |P⁻|, the number of candidates scored.
	Considered int
}

// SelectBest scores every P⁻ candidate on the subsample sub — estimating
// error(q, pre) as the CI half-width of the diff estimator (§5.2) — and
// returns the argmin. The subsample should be much smaller than the full
// sample (the paper uses rate ≤ 1/4^d) so identification stays cheaper
// than answering.
func SelectBest(c *cube.BPCube, q engine.Query, sub *sample.Sample, confidence float64) (Selection, error) {
	cands, err := Candidates(c, q)
	if err != nil {
		return Selection{}, err
	}
	best := Selection{Considered: len(cands)}
	first := true
	for _, pre := range cands {
		vals, err := DiffVector(sub, c, q, pre)
		if err != nil {
			return Selection{}, err
		}
		est := aqp.SumOfValues(sub, vals, confidence)
		if first || est.HalfWidth < best.SubsampleError {
			first = false
			best.Pre = pre
			best.SubsampleError = est.HalfWidth
		}
	}
	return best, nil
}

// BruteForceBest scores every aggregate in P⁺ — every (u, v) index pair
// combination — on the subsample and returns the argmin. It is
// exponentially more expensive than SelectBest and exists to validate the
// P⁻ reduction (Lemma 3) in tests and ablation benchmarks.
func BruteForceBest(c *cube.BPCube, q engine.Query, sub *sample.Sample, confidence float64) (Selection, error) {
	d := c.Dims()
	lo := make([]int, d)
	hi := make([]int, d)
	best := Selection{}
	first := true
	count := 0
	score := func(p Pre) error {
		count++
		vals, err := DiffVector(sub, c, q, p)
		if err != nil {
			return err
		}
		est := aqp.SumOfValues(sub, vals, confidence)
		if first || est.HalfWidth < best.SubsampleError {
			first = false
			best.Pre = p
			best.SubsampleError = est.HalfWidth
		}
		return nil
	}
	if err := score(Pre{Phi: true}); err != nil {
		return Selection{}, err
	}
	var rec func(i int) error
	rec = func(i int) error {
		if i == d {
			return score(Pre{Lo: append([]int(nil), lo...), Hi: append([]int(nil), hi...)})
		}
		k := len(c.Points[i])
		for u := -1; u < k; u++ {
			for v := u + 1; v < k; v++ {
				lo[i], hi[i] = u, v
				if err := rec(i + 1); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return Selection{}, err
	}
	best.Considered = count
	return best, nil
}
