package ident

import (
	"testing"

	"aqppp/internal/cube"
	"aqppp/internal/engine"
	"aqppp/internal/sample"
)

// BenchmarkSelectBest1D measures identification cost with 5 candidates.
func BenchmarkSelectBest1D(b *testing.B) {
	tbl := buildData(50000, 1)
	c, err := cube.Build(tbl, cube.Template{Agg: "a", Dims: []string{"c1"}},
		[][]float64{equalPoints(50, 100)})
	if err != nil {
		b.Fatal(err)
	}
	s, err := sample.NewUniform(tbl, 0.02, 2)
	if err != nil {
		b.Fatal(err)
	}
	sub := s.Subsample(0.25, 3)
	q := engine.Query{Func: engine.Sum, Col: "a",
		Ranges: []engine.Range{{Col: "c1", Lo: 13, Hi: 71}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SelectBest(c, q, sub, 0.95); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSelectBest2D measures the 17-candidate case.
func BenchmarkSelectBest2D(b *testing.B) {
	tbl := buildData(50000, 4)
	c, err := cube.Build(tbl, cube.Template{Agg: "a", Dims: []string{"c1", "c2"}},
		[][]float64{equalPoints(20, 100), equalPoints(10, 50)})
	if err != nil {
		b.Fatal(err)
	}
	s, err := sample.NewUniform(tbl, 0.02, 5)
	if err != nil {
		b.Fatal(err)
	}
	sub := s.Subsample(0.1, 6)
	q := engine.Query{Func: engine.Sum, Col: "a", Ranges: []engine.Range{
		{Col: "c1", Lo: 13, Hi: 71}, {Col: "c2", Lo: 7, Hi: 33}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SelectBest(c, q, sub, 0.95); err != nil {
			b.Fatal(err)
		}
	}
}
