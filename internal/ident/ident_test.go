package ident

import (
	"fmt"
	"math"
	"testing"

	"aqppp/internal/aqp"
	"aqppp/internal/cube"
	"aqppp/internal/engine"
	"aqppp/internal/sample"
	"aqppp/internal/stats"
)

func buildData(n int, seed uint64) *engine.Table {
	r := stats.NewRNG(seed)
	c1 := make([]int64, n)
	c2 := make([]int64, n)
	a := make([]float64, n)
	for i := 0; i < n; i++ {
		c1[i] = int64(r.Intn(100) + 1)
		c2[i] = int64(r.Intn(50) + 1)
		a[i] = 100 + 20*r.NormFloat64()
	}
	return engine.MustNewTable("t",
		engine.NewIntColumn("c1", c1),
		engine.NewIntColumn("c2", c2),
		engine.NewFloatColumn("a", a),
	)
}

func equalPoints(k int, dom int) []float64 {
	pts := make([]float64, k)
	for i := range pts {
		pts[i] = float64((i + 1) * dom / k)
	}
	return pts
}

func TestCandidatesCount1D(t *testing.T) {
	tbl := buildData(2000, 1)
	c, err := cube.Build(tbl, cube.Template{Agg: "a", Dims: []string{"c1"}},
		[][]float64{equalPoints(10, 100)})
	if err != nil {
		t.Fatal(err)
	}
	// Paper Figure 2 analogue: both endpoints strictly inside blocks give
	// |P⁻| = 4 + 1.
	q := engine.Query{Func: engine.Sum, Col: "a",
		Ranges: []engine.Range{{Col: "c1", Lo: 15, Hi: 41}}}
	cands, err := Candidates(c, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 5 {
		t.Errorf("|P⁻| = %d, want 5: %v", len(cands), cands)
	}
	if !cands[0].IsPhi() {
		t.Error("φ missing from P⁻")
	}
}

func TestCandidatesCount2D(t *testing.T) {
	tbl := buildData(3000, 2)
	c, err := cube.Build(tbl, cube.Template{Agg: "a", Dims: []string{"c1", "c2"}},
		[][]float64{equalPoints(10, 100), equalPoints(5, 50)})
	if err != nil {
		t.Fatal(err)
	}
	q := engine.Query{Func: engine.Sum, Col: "a", Ranges: []engine.Range{
		{Col: "c1", Lo: 15, Hi: 41}, {Col: "c2", Lo: 12, Hi: 33},
	}}
	cands, err := Candidates(c, q)
	if err != nil {
		t.Fatal(err)
	}
	// Up to 4^2 + 1 = 17, fewer if combinations are degenerate.
	if len(cands) > 17 || len(cands) < 10 {
		t.Errorf("|P⁻| = %d, want close to 17", len(cands))
	}
}

func TestCandidatesAlignedEndpoints(t *testing.T) {
	tbl := buildData(2000, 3)
	c, _ := cube.Build(tbl, cube.Template{Agg: "a", Dims: []string{"c1"}},
		[][]float64{equalPoints(10, 100)})
	// Query exactly aligned to block boundaries: (10, 40] == [11, 40].
	q := engine.Query{Func: engine.Sum, Col: "a",
		Ranges: []engine.Range{{Col: "c1", Lo: 11, Hi: 40}}}
	cands, err := Candidates(c, q)
	if err != nil {
		t.Fatal(err)
	}
	// One candidate must be the exactly aligned pre (1:3 in indices).
	found := false
	for _, p := range cands {
		if !p.IsPhi() && p.Lo[0] == 0 && p.Hi[0] == 3 {
			found = true
		}
	}
	if !found {
		t.Errorf("aligned pre missing from %v", cands)
	}
}

func TestCandidatesUnrestrictedDim(t *testing.T) {
	tbl := buildData(2000, 4)
	c, _ := cube.Build(tbl, cube.Template{Agg: "a", Dims: []string{"c1", "c2"}},
		[][]float64{equalPoints(10, 100), equalPoints(5, 50)})
	// Only c1 restricted: c2 contributes its full range to every pre.
	q := engine.Query{Func: engine.Sum, Col: "a",
		Ranges: []engine.Range{{Col: "c1", Lo: 15, Hi: 41}}}
	cands, err := Candidates(c, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 5 {
		t.Errorf("|P⁻| = %d, want 5", len(cands))
	}
	for _, p := range cands {
		if p.IsPhi() {
			continue
		}
		if p.Lo[1] != -1 || p.Hi[1] != len(c.Points[1])-1 {
			t.Errorf("unrestricted dim not full-range: %v", p)
		}
	}
}

func TestCandidatesNonCubeColumnIgnored(t *testing.T) {
	tbl := buildData(2000, 5)
	c, _ := cube.Build(tbl, cube.Template{Agg: "a", Dims: []string{"c1"}},
		[][]float64{equalPoints(10, 100)})
	q := engine.Query{Func: engine.Sum, Col: "a", Ranges: []engine.Range{
		{Col: "c1", Lo: 15, Hi: 41}, {Col: "c2", Lo: 1, Hi: 10},
	}}
	cands, err := Candidates(c, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 5 {
		t.Errorf("|P⁻| = %d, want 5 (c2 is not a cube dim)", len(cands))
	}
}

func TestCandidatesNarrowQueryInsideOneBlock(t *testing.T) {
	tbl := buildData(2000, 6)
	c, _ := cube.Build(tbl, cube.Template{Agg: "a", Dims: []string{"c1"}},
		[][]float64{equalPoints(10, 100)})
	// Query entirely inside block (10, 20]: l_x = l_y, some combinations
	// collapse; φ must still be there.
	q := engine.Query{Func: engine.Sum, Col: "a",
		Ranges: []engine.Range{{Col: "c1", Lo: 12, Hi: 18}}}
	cands, err := Candidates(c, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) < 2 || len(cands) > 5 {
		t.Errorf("|P⁻| = %d for in-block query", len(cands))
	}
	hasPhi := false
	for _, p := range cands {
		if p.IsPhi() {
			hasPhi = true
		}
	}
	if !hasPhi {
		t.Error("φ missing")
	}
}

func TestDiffVectorPhiEqualsConditionVector(t *testing.T) {
	tbl := buildData(2000, 7)
	c, _ := cube.Build(tbl, cube.Template{Agg: "a", Dims: []string{"c1"}},
		[][]float64{equalPoints(10, 100)})
	s, _ := sample.NewUniform(tbl, 0.2, 9)
	q := engine.Query{Func: engine.Sum, Col: "a",
		Ranges: []engine.Range{{Col: "c1", Lo: 15, Hi: 41}}}
	dv, err := DiffVector(s, c, q, Pre{Phi: true})
	if err != nil {
		t.Fatal(err)
	}
	cv, _ := aqp.ConditionVector(s, q)
	for i := range dv {
		if dv[i] != cv[i] {
			t.Fatalf("row %d: diff %v != cond %v", i, dv[i], cv[i])
		}
	}
}

func TestDiffVectorExactPreIsZero(t *testing.T) {
	// When pre == q exactly (aligned endpoints), the diff vector is all
	// zeros, so AQP++ answers exactly (the paper's "subsumes AggPre").
	tbl := buildData(2000, 8)
	c, _ := cube.Build(tbl, cube.Template{Agg: "a", Dims: []string{"c1"}},
		[][]float64{equalPoints(10, 100)})
	s, _ := sample.NewUniform(tbl, 0.2, 10)
	q := engine.Query{Func: engine.Sum, Col: "a",
		Ranges: []engine.Range{{Col: "c1", Lo: 11, Hi: 40}}}
	pre := Pre{Lo: []int{0}, Hi: []int{3}}
	dv, err := DiffVector(s, c, q, pre)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range dv {
		if v != 0 {
			t.Fatalf("row %d: diff = %v, want 0", i, v)
		}
	}
	// And pre.Value matches the exact answer.
	truth, _ := tbl.Execute(q)
	if math.Abs(pre.Value(c)-truth.Value) > 1e-9 {
		t.Errorf("pre value %v != truth %v", pre.Value(c), truth.Value)
	}
}

func TestSelectBestPrefersAlignedPre(t *testing.T) {
	tbl := buildData(5000, 11)
	c, _ := cube.Build(tbl, cube.Template{Agg: "a", Dims: []string{"c1"}},
		[][]float64{equalPoints(10, 100)})
	s, _ := sample.NewUniform(tbl, 0.2, 12)
	sub := s.Subsample(0.25, 13)
	q := engine.Query{Func: engine.Sum, Col: "a",
		Ranges: []engine.Range{{Col: "c1", Lo: 11, Hi: 40}}}
	sel, err := SelectBest(c, q, sub, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Pre.IsPhi() {
		t.Error("φ chosen despite an exactly aligned pre being available")
	}
	if sel.SubsampleError != 0 {
		t.Errorf("aligned pre error = %v, want 0", sel.SubsampleError)
	}
	if sel.Considered != 5 {
		t.Errorf("considered %d candidates", sel.Considered)
	}
}

func TestSelectBestBeatsPhiOnCoveredQueries(t *testing.T) {
	// A query mostly covered by a precomputed block should pick a non-φ
	// pre with a smaller estimated error than φ's.
	tbl := buildData(20000, 14)
	c, _ := cube.Build(tbl, cube.Template{Agg: "a", Dims: []string{"c1"}},
		[][]float64{equalPoints(10, 100)})
	s, _ := sample.NewUniform(tbl, 0.1, 15)
	sub := s.Subsample(0.25, 16)
	q := engine.Query{Func: engine.Sum, Col: "a",
		Ranges: []engine.Range{{Col: "c1", Lo: 12, Hi: 69}}}
	sel, err := SelectBest(c, q, sub, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Pre.IsPhi() {
		t.Error("expected a non-φ selection for a block-covered query")
	}
	phiVals, _ := DiffVector(sub, c, q, Pre{Phi: true})
	phiErr := aqp.SumOfValues(sub, phiVals, 0.95).HalfWidth
	if sel.SubsampleError >= phiErr {
		t.Errorf("chosen error %v not better than φ's %v", sel.SubsampleError, phiErr)
	}
}

func TestSelectBestMatchesBruteForce(t *testing.T) {
	// Lemma 3 empirically: the P⁻ argmin equals the P⁺ argmin error on
	// the same subsample (ties may differ in identity, not in error).
	for trial := uint64(0); trial < 5; trial++ {
		tbl := buildData(5000, 20+trial)
		c, _ := cube.Build(tbl, cube.Template{Agg: "a", Dims: []string{"c1"}},
			[][]float64{equalPoints(6, 100)})
		s, _ := sample.NewUniform(tbl, 0.1, 30+trial)
		sub := s.Subsample(0.5, 40+trial)
		r := stats.NewRNG(50 + trial)
		lo := float64(r.Intn(80) + 1)
		hi := lo + float64(r.Intn(20)+5)
		q := engine.Query{Func: engine.Sum, Col: "a",
			Ranges: []engine.Range{{Col: "c1", Lo: lo, Hi: hi}}}
		fast, err := SelectBest(c, q, sub, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		brute, err := BruteForceBest(c, q, sub, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if fast.SubsampleError > brute.SubsampleError*1.0001+1e-9 {
			t.Errorf("trial %d (q=[%v,%v]): P⁻ best %v worse than P⁺ best %v",
				trial, lo, hi, fast.SubsampleError, brute.SubsampleError)
		}
		if brute.Considered <= fast.Considered {
			t.Errorf("brute force considered %d <= fast %d", brute.Considered, fast.Considered)
		}
	}
}

func TestPreStringAndValue(t *testing.T) {
	if got := (Pre{Phi: true}).String(); got != "φ" {
		t.Errorf("phi String = %q", got)
	}
	p := Pre{Lo: []int{-1, 2}, Hi: []int{3, 4}}
	s := p.String()
	if s == "" || s == "φ" {
		t.Errorf("String = %q", s)
	}
	tbl := buildData(100, 30)
	c, _ := cube.Build(tbl, cube.Template{Agg: "a", Dims: []string{"c1"}},
		[][]float64{equalPoints(4, 100)})
	if got := (Pre{Phi: true}).Value(c); got != 0 {
		t.Errorf("φ value = %v", got)
	}
	full := Pre{Lo: []int{-1}, Hi: []int{len(c.Points[0]) - 1}}
	if math.Abs(full.Value(c)-c.TotalSum()) > 1e-9 {
		t.Errorf("full pre value %v != total %v", full.Value(c), c.TotalSum())
	}
}

func TestCandidatesInvertedRange(t *testing.T) {
	tbl := buildData(100, 31)
	c, _ := cube.Build(tbl, cube.Template{Agg: "a", Dims: []string{"c1"}},
		[][]float64{equalPoints(4, 100)})
	q := engine.Query{Func: engine.Sum, Col: "a",
		Ranges: []engine.Range{{Col: "c1", Lo: 50, Hi: 10}}}
	if _, err := Candidates(c, q); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestCandidatesCappedHighDims(t *testing.T) {
	// An 8-D cube: the exact P⁻ would be 4^8 + 1 = 65537; the cap must
	// shrink it while keeping φ and at least one non-φ candidate.
	n := 4000
	r := stats.NewRNG(77)
	cols := make([]*engine.Column, 0, 9)
	a := make([]float64, n)
	for i := range a {
		a[i] = 10 + r.NormFloat64()
	}
	cols = append(cols, engine.NewFloatColumn("a", a))
	dims := make([]string, 8)
	points := make([][]float64, 8)
	for d := 0; d < 8; d++ {
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(r.Intn(20) + 1)
		}
		name := fmt.Sprintf("d%d", d)
		cols = append(cols, engine.NewIntColumn(name, vals))
		dims[d] = name
		points[d] = []float64{5, 10, 15, 20}
	}
	tbl := engine.MustNewTable("t", cols...)
	c, err := cube.Build(tbl, cube.Template{Agg: "a", Dims: dims}, points)
	if err != nil {
		t.Fatal(err)
	}
	var ranges []engine.Range
	for d := 0; d < 8; d++ {
		ranges = append(ranges, engine.Range{Col: dims[d], Lo: 3, Hi: 17})
	}
	q := engine.Query{Func: engine.Sum, Col: "a", Ranges: ranges}
	cands, err := CandidatesCapped(c, q, 256)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) > 257 {
		t.Errorf("cap ignored: |P⁻| = %d", len(cands))
	}
	if len(cands) < 2 {
		t.Errorf("cap too aggressive: |P⁻| = %d", len(cands))
	}
	// Unlimited enumeration really is huge.
	full, err := CandidatesCapped(c, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) <= len(cands) {
		t.Errorf("unlimited %d <= capped %d", len(full), len(cands))
	}
}
