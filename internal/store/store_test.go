package store

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"aqppp/internal/cube"
	"aqppp/internal/engine"
	"aqppp/internal/sample"
	"aqppp/internal/stats"
)

// testTable builds a table exercising every column type and both int
// encodings: "key" is clustered (non-decreasing → varint-delta blocks),
// "rnd" is shuffled with negatives (raw blocks), "val" is float with
// negatives and exact-binary values, "cat" is a small dictionary.
func testTable(t *testing.T, name string, n int, seed uint64) *engine.Table {
	t.Helper()
	r := stats.NewRNG(seed)
	keys := make([]int64, n)
	rnds := make([]int64, n)
	vals := make([]float64, n)
	cats := make([]string, n)
	pool := []string{"north", "south", "east", "west", "delta"}
	for i := 0; i < n; i++ {
		keys[i] = int64(i / 3)
		rnds[i] = int64(r.Intn(2_000_000)) - 1_000_000
		vals[i] = r.Float64()*1000 - 500
		cats[i] = pool[r.Intn(len(pool))]
	}
	return engine.MustNewTable(name,
		engine.NewIntColumn("key", keys),
		engine.NewIntColumn("rnd", rnds),
		engine.NewFloatColumn("val", vals),
		engine.NewStringColumn("cat", cats),
	)
}

func writeTemp(t *testing.T, tbl *engine.Table, preps []Prep) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), tbl.Name+".aqps")
	if err := Write(path, tbl, preps); err != nil {
		t.Fatal(err)
	}
	return path
}

func openTemp(t *testing.T, path string, opts Options) *Store {
	t.Helper()
	s, err := Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// equivalenceQueries is the query battery every disk-vs-memory test runs:
// scalar aggregates, filters on every column type, group-by.
func equivalenceQueries() []engine.Query {
	return []engine.Query{
		{Func: engine.Count},
		{Func: engine.Sum, Col: "val"},
		{Func: engine.Sum, Col: "rnd"},
		{Func: engine.Avg, Col: "val", Ranges: []engine.Range{{Col: "key", Lo: 10, Hi: 800}}},
		{Func: engine.Var, Col: "val", Ranges: []engine.Range{{Col: "rnd", Lo: -500000, Hi: 500000}}},
		{Func: engine.Min, Col: "val", Ranges: []engine.Range{{Col: "cat", Lo: 1, Hi: 3}}},
		{Func: engine.Max, Col: "rnd", Ranges: []engine.Range{{Col: "key", Lo: 0, Hi: 1e9}}},
		{Func: engine.Sum, Col: "val", GroupBy: []string{"cat"}},
		{Func: engine.Count, GroupBy: []string{"cat"}, Ranges: []engine.Range{{Col: "key", Lo: 100, Hi: 400}}},
	}
}

// assertTableEquivalent runs the query battery plus row accessors against
// the backed table and requires bit-identical answers to the resident one.
func assertTableEquivalent(t *testing.T, resident, backed *engine.Table) {
	t.Helper()
	if got, want := backed.NumRows(), resident.NumRows(); got != want {
		t.Fatalf("NumRows = %d, want %d", got, want)
	}
	for _, q := range equivalenceQueries() {
		want, err := resident.Execute(q)
		if err != nil {
			t.Fatalf("%+v (resident): %v", q, err)
		}
		got, err := backed.Execute(q)
		if err != nil {
			t.Fatalf("%+v (backed): %v", q, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%+v: backed %+v != resident %+v", q, got, want)
		}
	}
	n := resident.NumRows()
	rows := []int{0, 1, n / 2, n - 1, blockRows - 1, blockRows}
	for _, row := range rows {
		if row < 0 || row >= n {
			continue
		}
		for _, c := range resident.Columns {
			if g, w := backed.MustColumn(c.Name).StringAt(row), c.StringAt(row); g != w {
				t.Fatalf("StringAt(%s, %d) = %q, want %q", c.Name, row, g, w)
			}
		}
	}
}

// TestRoundTrip pins write→open equivalence across row counts that hit
// the block-boundary edge cases: single row, one partial block, exactly
// one block, one full + one partial, and a multi-block table.
func TestRoundTrip(t *testing.T) {
	for _, n := range []int{1, 100, blockRows, blockRows + 1, 3*blockRows + 57} {
		tbl := testTable(t, "rt", n, uint64(n))
		s := openTemp(t, writeTemp(t, tbl, nil), Options{})
		if !s.Table().Backed() {
			t.Fatal("store table not marked backed")
		}
		assertTableEquivalent(t, tbl, s.Table())
		if s.Table().Name != "rt" || s.NumRows() != n {
			t.Errorf("n=%d: name=%q rows=%d", n, s.Table().Name, s.NumRows())
		}
	}
}

// TestRoundTripRandomized is the fuzz-ish leg: random tables (random
// sizes, value ranges, dictionary widths), the full query battery each.
func TestRoundTripRandomized(t *testing.T) {
	r := stats.NewRNG(99)
	for trial := 0; trial < 5; trial++ {
		n := 1 + r.Intn(3*blockRows)
		tbl := testTable(t, "rnd", n, r.Uint64())
		s := openTemp(t, writeTemp(t, tbl, nil), Options{})
		assertTableEquivalent(t, tbl, s.Table())
		s.Close()
	}
}

// TestIntBoundsAndZones pins the metadata the planner consults without
// touching data: exact integer bounds and per-block zone summaries.
func TestIntBoundsAndZones(t *testing.T) {
	n := 2*blockRows + 10
	tbl := testTable(t, "zb", n, 3)
	s := openTemp(t, writeTemp(t, tbl, nil), Options{})
	lo, hi, ok := s.srcs[0].IntBounds()
	if !ok || lo != 0 || hi != int64((n-1)/3) {
		t.Errorf("key bounds = [%d, %d] ok=%v, want [0, %d]", lo, hi, ok, (n-1)/3)
	}
	mins, maxs := s.srcs[0].BlockZones()
	nb := (n + blockRows - 1) / blockRows
	if len(mins) != nb || len(maxs) != nb {
		t.Fatalf("zones = %d/%d blocks, want %d", len(mins), len(maxs), nb)
	}
	// key = row/3 is clustered, so block zones are tight and disjoint-ish.
	if mins[0] != 0 || maxs[0] != float64((blockRows-1)/3) {
		t.Errorf("block 0 zone = [%g, %g]", mins[0], maxs[0])
	}
	if s.CacheStats().Misses != 0 {
		t.Errorf("metadata queries faulted %d blocks; should be resident-only", s.CacheStats().Misses)
	}
}

// TestPruningViaCache asserts the acceptance criterion at the store
// layer: a narrow range over the clustered key faults only the blocks the
// zone maps cannot prune — pruned blocks are never read from disk.
func TestPruningViaCache(t *testing.T) {
	n := 8 * blockRows
	tbl := testTable(t, "pr", n, 4)
	s := openTemp(t, writeTemp(t, tbl, nil), Options{})
	if got := s.CacheStats().Misses; got != 0 {
		t.Fatalf("open faulted %d blocks; open must be metadata-only", got)
	}
	// key = row/3: keys [0, 1355] live entirely in block 0.
	q := engine.Query{Func: engine.Sum, Col: "val",
		Ranges: []engine.Range{{Col: "key", Lo: 0, Hi: float64(blockRows/3 - 10)}}}
	want, err := tbl.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Table().Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.ExactEqual(got.Value, want.Value) {
		t.Fatalf("value = %g, want %g", got.Value, want.Value)
	}
	// One key block to filter + one val block to aggregate.
	if misses := s.CacheStats().Misses; misses > 2 {
		t.Errorf("narrow scan faulted %d blocks of %d; pruning failed", misses, 2*(n/blockRows))
	}
	// The same scan again is all cache hits: zero new disk reads.
	before := s.CacheStats().Misses
	if _, err := s.Table().Execute(q); err != nil {
		t.Fatal(err)
	}
	after := s.CacheStats()
	if after.Misses != before {
		t.Errorf("repeat scan faulted %d new blocks, want 0", after.Misses-before)
	}
	if after.Hits == 0 {
		t.Error("repeat scan recorded no cache hits")
	}
}

// TestCacheEviction bounds the cache below the working set and checks
// the LRU actually evicts: resident stays under cap, evictions counted,
// and everything still answers correctly.
func TestCacheEviction(t *testing.T) {
	n := 6 * blockRows
	tbl := testTable(t, "ev", n, 5)
	// ~3 blocks of budget against a 24-block working set (4 cols × 6).
	capBytes := int64(3 * (blockRows*8 + cacheEntryOverhead))
	s := openTemp(t, writeTemp(t, tbl, nil), Options{CacheBytes: capBytes})
	q := engine.Query{Func: engine.Sum, Col: "val", Ranges: []engine.Range{{Col: "rnd", Lo: -2e6, Hi: 2e6}}}
	want, _ := tbl.Execute(q)
	for i := 0; i < 3; i++ {
		got, err := s.Table().Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		if !stats.ExactEqual(got.Value, want.Value) {
			t.Fatalf("pass %d: value = %g, want %g", i, got.Value, want.Value)
		}
	}
	cs := s.CacheStats()
	if cs.Evictions == 0 {
		t.Error("working set over cap evicted nothing")
	}
	if cs.ResidentBytes > cs.CapBytes {
		t.Errorf("resident %d bytes exceeds cap %d", cs.ResidentBytes, cs.CapBytes)
	}
	if cs.CapBytes != capBytes {
		t.Errorf("cap = %d, want %d", cs.CapBytes, capBytes)
	}
}

// TestNoMmap pins the portable read path: same answers, no mapping.
func TestNoMmap(t *testing.T) {
	tbl := testTable(t, "nm", 2*blockRows+7, 6)
	s := openTemp(t, writeTemp(t, tbl, nil), Options{NoMmap: true})
	if s.Mmapped() {
		t.Fatal("NoMmap store reports a mapping")
	}
	assertTableEquivalent(t, tbl, s.Table())
}

// TestClosedStore pins the post-Close surface: cache-missing scans fail
// with ErrClosed (no panic), already-cached blocks keep answering.
func TestClosedStore(t *testing.T) {
	n := 2 * blockRows
	tbl := testTable(t, "cl", n, 7)
	s := openTemp(t, writeTemp(t, tbl, nil), Options{})
	// Fault val + rnd blocks in, then close.
	warm := engine.Query{Func: engine.Sum, Col: "val", Ranges: []engine.Range{{Col: "rnd", Lo: -2e6, Hi: 2e6}}}
	want, err := s.Table().Execute(warm)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Cached blocks own their memory: the warm query still answers.
	got, err := s.Table().Execute(warm)
	if err != nil {
		t.Fatalf("cached query after close: %v", err)
	}
	if !stats.ExactEqual(got.Value, want.Value) {
		t.Fatalf("cached answer drifted after close: %g != %g", got.Value, want.Value)
	}
	// An uncached column faults and must fail cleanly.
	if _, err := s.Table().Execute(engine.Query{Func: engine.Sum, Col: "key"}); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Fatalf("cold query after close: got %v, want ErrClosed", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

// TestWriteRefusesBacked pins the copy-before-rewrite rule.
func TestWriteRefusesBacked(t *testing.T) {
	tbl := testTable(t, "wb", 100, 8)
	s := openTemp(t, writeTemp(t, tbl, nil), Options{})
	err := Write(filepath.Join(t.TempDir(), "again.aqps"), s.Table(), nil)
	if err == nil || !strings.Contains(err.Error(), "backend-served") {
		t.Fatalf("Write(backed) = %v, want refusal", err)
	}
}

// TestPrepRoundTrip pins prep persistence at the store layer: a
// stratified sample (strata + assignment vector), min/max indexes, and
// confidence all survive the container.
func TestPrepRoundTrip(t *testing.T) {
	tbl := testTable(t, "pp", 3000, 9)
	smp, err := sample.NewStratified(tbl, []string{"cat"}, 0.1, 5, 11)
	if err != nil {
		t.Fatal(err)
	}
	sub := smp.Subsample(0.3, 12)
	mm, err := cube.BuildMinMax(tbl, "val", "key")
	if err != nil {
		t.Fatal(err)
	}
	in := Prep{Name: "handle-a", Sample: smp, Sub: sub, MinMax: []*cube.MinMaxIndex{mm}, Confidence: 0.9}
	s := openTemp(t, writeTemp(t, tbl, []Prep{in}), Options{})
	preps := s.Preps()
	if len(preps) != 1 {
		t.Fatalf("Preps = %d, want 1", len(preps))
	}
	out := preps[0]
	if out.Name != "handle-a" || out.Confidence != 0.9 {
		t.Errorf("name=%q conf=%v", out.Name, out.Confidence)
	}
	if out.Cube != nil || out.CountCube != nil {
		t.Error("absent cubes resurrected")
	}
	if out.Sample.Kind != smp.Kind || out.Sample.SourceRows != smp.SourceRows {
		t.Errorf("sample kind/rows = %v/%d, want %v/%d", out.Sample.Kind, out.Sample.SourceRows, smp.Kind, smp.SourceRows)
	}
	if !reflect.DeepEqual(out.Sample.InvP, smp.InvP) ||
		!reflect.DeepEqual(out.Sample.Strata, smp.Strata) ||
		!reflect.DeepEqual(out.Sample.StratumOf, smp.StratumOf) {
		t.Error("sample weights/strata drifted through the container")
	}
	if out.Sample.Size() != smp.Size() {
		t.Errorf("sample size = %d, want %d", out.Sample.Size(), smp.Size())
	}
	if out.Sub == nil || out.Sub.Size() != sub.Size() {
		t.Error("subsample drifted")
	}
	// The min/max index must answer identically after its sparse-table
	// rebuild from persisted ords/vals.
	for _, rng := range [][2]float64{{0, 100}, {50, 999}, {0, 1e9}} {
		wmn, wmnOK := mm.Min(rng[0], rng[1])
		gmn, gmnOK := out.MinMax[0].Min(rng[0], rng[1])
		wmx, wmxOK := mm.Max(rng[0], rng[1])
		gmx, gmxOK := out.MinMax[0].Max(rng[0], rng[1])
		if wmnOK != gmnOK || wmxOK != gmxOK || !stats.ExactEqual(wmn, gmn) || !stats.ExactEqual(wmx, gmx) {
			t.Errorf("minmax [%g,%g]: got (%g,%g) want (%g,%g)", rng[0], rng[1], gmn, gmx, wmn, wmx)
		}
	}
}

// --- corruption ---------------------------------------------------------

// mustOpenErr opens a (deliberately damaged) container and requires a
// clean error mentioning want — never a panic, never success.
func mustOpenErr(t *testing.T, path, want string) {
	t.Helper()
	s, err := Open(path, Options{})
	if err == nil {
		s.Close()
		t.Fatalf("Open(%s) succeeded, want error containing %q", filepath.Base(path), want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("Open error = %v, want substring %q", err, want)
	}
}

func corruptCopy(t *testing.T, path string, mutate func([]byte) []byte) string {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "corrupt.aqps")
	if err := os.WriteFile(out, mutate(append([]byte(nil), raw...)), 0o644); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestCorruption damages a valid container every way the format is
// supposed to detect and requires a clean, specific error for each.
func TestCorruption(t *testing.T) {
	// rows = blockRows exactly, so the rows uvarint is the 2-byte
	// encoding of 4096 and one patched byte makes it imply 2 blocks
	// against a 1-block index (the count-mismatch case below).
	tbl := testTable(t, "t", blockRows, 10)
	path := writeTemp(t, tbl, nil)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	footOff := len(raw) - footerSize
	metaOff := int64(binary.LittleEndian.Uint64(raw[footOff : footOff+8]))
	metaLen := int64(binary.LittleEndian.Uint64(raw[footOff+8 : footOff+16]))

	t.Run("truncated-footer", func(t *testing.T) {
		mustOpenErr(t, corruptCopy(t, path, func(b []byte) []byte {
			return b[:len(b)-10]
		}), "corrupt")
	})
	t.Run("tiny-file", func(t *testing.T) {
		mustOpenErr(t, corruptCopy(t, path, func(b []byte) []byte {
			return b[:20]
		}), "smaller than header+footer")
	})
	t.Run("bad-header-magic", func(t *testing.T) {
		mustOpenErr(t, corruptCopy(t, path, func(b []byte) []byte {
			b[0] ^= 0xff
			return b
		}), "bad magic")
	})
	t.Run("unsupported-version", func(t *testing.T) {
		mustOpenErr(t, corruptCopy(t, path, func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[4:8], 99)
			return b
		}), "unsupported format version")
	})
	t.Run("footer-checksum", func(t *testing.T) {
		mustOpenErr(t, corruptCopy(t, path, func(b []byte) []byte {
			b[len(b)-footerSize] ^= 0xff // metaOff byte; footerCRC now wrong
			return b
		}), "footer checksum")
	})
	t.Run("meta-checksum", func(t *testing.T) {
		mustOpenErr(t, corruptCopy(t, path, func(b []byte) []byte {
			b[metaOff+metaLen/2] ^= 0xff
			return b
		}), "meta checksum")
	})
	t.Run("block-count-mismatch", func(t *testing.T) {
		mustOpenErr(t, corruptCopy(t, path, func(b []byte) []byte {
			// Meta starts: len("t")=1, 't', then rows as a 2-byte uvarint
			// (4096 = 0x80 0x20). Patch to 4097 (0x81 0x20): rows now
			// imply 2 blocks, the per-column indexes still say 1. Re-seal
			// both checksums so only the mismatch trips.
			rowsAt := metaOff + 2
			if b[rowsAt] != 0x80 || b[rowsAt+1] != 0x20 {
				t.Fatalf("rows uvarint = % x, expected 80 20 (layout drift?)", b[rowsAt:rowsAt+2])
			}
			b[rowsAt] = 0x81
			meta := b[metaOff : metaOff+metaLen]
			binary.LittleEndian.PutUint32(b[footOff+16:footOff+20], crc32.ChecksumIEEE(meta))
			binary.LittleEndian.PutUint32(b[footOff+40:footOff+44], crc32.ChecksumIEEE(b[footOff:footOff+40]))
			return b
		}), "blocks in its index")
	})
	t.Run("meta-out-of-bounds", func(t *testing.T) {
		mustOpenErr(t, corruptCopy(t, path, func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[footOff:footOff+8], uint64(len(b)))
			binary.LittleEndian.PutUint32(b[footOff+40:footOff+44], crc32.ChecksumIEEE(b[footOff:footOff+40]))
			return b
		}), "out of bounds")
	})
	t.Run("prep-checksum", func(t *testing.T) {
		// Re-write with a prep so the prep section is non-empty.
		tbl2 := testTable(t, "t2", 100, 11)
		smp, err := sample.NewUniform(tbl2, 0.5, 1)
		if err != nil {
			t.Fatal(err)
		}
		p2 := writeTemp(t, tbl2, []Prep{{Name: "x", Sample: smp, Confidence: 0.95}})
		raw2, err := os.ReadFile(p2)
		if err != nil {
			t.Fatal(err)
		}
		fo := len(raw2) - footerSize
		prepOff := binary.LittleEndian.Uint64(raw2[fo+20 : fo+28])
		mustOpenErr(t, corruptCopy(t, p2, func(b []byte) []byte {
			b[prepOff+3] ^= 0xff
			return b
		}), "prep checksum")
	})
	// Data-block damage is not checksummed, but structural decode checks
	// still catch truncation-style corruption at fault time, as an error,
	// not a panic. Shrink block 0 of the delta-coded key column by lying
	// in its index is CRC-protected; instead verify a valid open then a
	// failing read after the file is truncated under a NoMmap store.
	t.Run("read-after-truncate", func(t *testing.T) {
		big := testTable(t, "big", 3*blockRows, 12)
		p3 := writeTemp(t, big, nil)
		s, err := Open(p3, Options{NoMmap: true})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		// Truncating the data region under an open store must surface as
		// a read error on fault, never a panic.
		if err := os.Truncate(p3, 64); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Table().Execute(engine.Query{Func: engine.Sum, Col: "val"}); err == nil {
			t.Fatal("scan over truncated file succeeded")
		}
	})
}

// TestAtomicWrite pins the tmp-then-rename contract: a failed write never
// replaces an existing good container.
func TestAtomicWrite(t *testing.T) {
	tbl := testTable(t, "aw", 500, 13)
	path := writeTemp(t, tbl, nil)
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	backed := openTemp(t, path, Options{})
	// Write over the same path with a backed table: refused up front.
	if err := Write(path, backed.Table(), nil); err == nil {
		t.Fatal("backed rewrite accepted")
	}
	now, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(good, now) {
		t.Fatal("failed write damaged the existing container")
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("tmp file left behind: %v", err)
	}
}
