package store

import (
	"bytes"
	"fmt"

	"aqppp/internal/cube"
	"aqppp/internal/engine"
	"aqppp/internal/sample"
)

// Prep is one prepared query handle persisted alongside its table: the
// sample(s), BP-cubes and min/max indexes that core.Processor needs, so
// a restart is a metadata load instead of a rebuild. The store layer
// deliberately stays below internal/core — the root package converts
// between Prep and core.Processor.
type Prep struct {
	Name       string
	Sample     *sample.Sample
	Sub        *sample.Sample
	Cube       *cube.BPCube
	CubeFull   bool
	CountCube  *cube.BPCube
	CountFull  bool
	MinMax     []*cube.MinMaxIndex
	Confidence float64
}

// Embedded streams (samples, cubes, indexes) are length-prefixed even
// though they self-delimit: their readers buffer, and a prefix lets the
// decoder hand each one an exact byte slice.

func encodePreps(b *bytes.Buffer, preps []Prep) error {
	puv(b, uint64(len(preps)))
	for i := range preps {
		p := &preps[i]
		pstr(b, p.Name)
		pf64(b, p.Confidence)
		if err := encodeSample(b, p.Sample); err != nil {
			return fmt.Errorf("store: prep %q sample: %w", p.Name, err)
		}
		if err := encodeSample(b, p.Sub); err != nil {
			return fmt.Errorf("store: prep %q subsample: %w", p.Name, err)
		}
		if err := encodeCube(b, p.Cube, p.CubeFull); err != nil {
			return fmt.Errorf("store: prep %q cube: %w", p.Name, err)
		}
		if err := encodeCube(b, p.CountCube, p.CountFull); err != nil {
			return fmt.Errorf("store: prep %q count cube: %w", p.Name, err)
		}
		puv(b, uint64(len(p.MinMax)))
		for _, m := range p.MinMax {
			var blob bytes.Buffer
			if err := m.WriteBinary(&blob); err != nil {
				return fmt.Errorf("store: prep %q minmax: %w", p.Name, err)
			}
			puv(b, uint64(blob.Len()))
			b.Write(blob.Bytes())
		}
	}
	return nil
}

func decodePreps(data []byte) ([]Prep, error) {
	r := &byteReader{data: data}
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > 1<<16 {
		return nil, corruptf("%d prepared handles is implausible", n)
	}
	preps := make([]Prep, n)
	for i := range preps {
		p := &preps[i]
		if p.Name, err = r.str(); err != nil {
			return nil, err
		}
		if p.Confidence, err = r.f64(); err != nil {
			return nil, err
		}
		if p.Sample, err = decodeSample(r); err != nil {
			return nil, fmt.Errorf("store: prep %q sample: %w", p.Name, err)
		}
		if p.Sub, err = decodeSample(r); err != nil {
			return nil, fmt.Errorf("store: prep %q subsample: %w", p.Name, err)
		}
		if p.Cube, p.CubeFull, err = decodeCube(r); err != nil {
			return nil, fmt.Errorf("store: prep %q cube: %w", p.Name, err)
		}
		if p.CountCube, p.CountFull, err = decodeCube(r); err != nil {
			return nil, fmt.Errorf("store: prep %q count cube: %w", p.Name, err)
		}
		nm, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if nm > 1<<16 {
			return nil, corruptf("%d minmax indexes is implausible", nm)
		}
		p.MinMax = make([]*cube.MinMaxIndex, nm)
		for j := range p.MinMax {
			blob, err := lengthPrefixed(r)
			if err != nil {
				return nil, err
			}
			if p.MinMax[j], err = cube.ReadMinMax(bytes.NewReader(blob)); err != nil {
				return nil, fmt.Errorf("store: prep %q minmax %d: %w", p.Name, j, err)
			}
		}
	}
	return preps, nil
}

// encodeSample writes a nil-able sample: presence byte, then structure
// fields, then the sample rows as a legacy AQPT table stream (the one
// place that format remains load-bearing).
func encodeSample(b *bytes.Buffer, s *sample.Sample) error {
	if s == nil {
		b.WriteByte(0)
		return nil
	}
	b.WriteByte(1)
	var blob bytes.Buffer
	blob.WriteByte(byte(s.Kind))
	puv(&blob, uint64(s.SourceRows))
	puv(&blob, uint64(len(s.InvP)))
	for _, v := range s.InvP {
		pf64(&blob, v)
	}
	puv(&blob, uint64(len(s.Strata)))
	for _, st := range s.Strata {
		pstr(&blob, st.Key)
		puv(&blob, uint64(st.SourceRows))
		puv(&blob, uint64(st.SampleRows))
	}
	puv(&blob, uint64(len(s.StratumOf)))
	for _, v := range s.StratumOf {
		puv(&blob, uint64(v))
	}
	if err := s.Table.WriteBinary(&blob); err != nil {
		return err
	}
	puv(b, uint64(blob.Len()))
	b.Write(blob.Bytes())
	return nil
}

func decodeSample(r *byteReader) (*sample.Sample, error) {
	present, err := r.byteVal()
	if err != nil {
		return nil, err
	}
	if present == 0 {
		return nil, nil
	}
	blob, err := lengthPrefixed(r)
	if err != nil {
		return nil, err
	}
	br := &byteReader{data: blob}
	s := &sample.Sample{}
	kind, err := br.byteVal()
	if err != nil {
		return nil, err
	}
	s.Kind = sample.Kind(kind)
	sr, err := br.uvarint()
	if err != nil {
		return nil, err
	}
	s.SourceRows = int(sr)
	ni, err := br.uvarint()
	if err != nil {
		return nil, err
	}
	if ni > 0 {
		s.InvP = make([]float64, ni)
		for i := range s.InvP {
			if s.InvP[i], err = br.f64(); err != nil {
				return nil, err
			}
		}
	}
	ns, err := br.uvarint()
	if err != nil {
		return nil, err
	}
	if ns > 0 {
		s.Strata = make([]sample.Stratum, ns)
		for i := range s.Strata {
			st := &s.Strata[i]
			if st.Key, err = br.str(); err != nil {
				return nil, err
			}
			v, err := br.uvarint()
			if err != nil {
				return nil, err
			}
			st.SourceRows = int(v)
			if v, err = br.uvarint(); err != nil {
				return nil, err
			}
			st.SampleRows = int(v)
		}
	}
	no, err := br.uvarint()
	if err != nil {
		return nil, err
	}
	if no > 0 {
		s.StratumOf = make([]int, no)
		for i := range s.StratumOf {
			v, err := br.uvarint()
			if err != nil {
				return nil, err
			}
			s.StratumOf[i] = int(v)
		}
	}
	rest := blob[br.pos:]
	if s.Table, err = engine.ReadBinary(bytes.NewReader(rest)); err != nil {
		return nil, err
	}
	return s, nil
}

// encodeCube writes a nil-able cube plus its Full flag (the cube stream
// itself does not carry it).
func encodeCube(b *bytes.Buffer, c *cube.BPCube, full bool) error {
	if c == nil {
		b.WriteByte(0)
		return nil
	}
	b.WriteByte(1)
	var blob bytes.Buffer
	if full {
		blob.WriteByte(1)
	} else {
		blob.WriteByte(0)
	}
	if err := c.WriteBinary(&blob); err != nil {
		return err
	}
	puv(b, uint64(blob.Len()))
	b.Write(blob.Bytes())
	return nil
}

func decodeCube(r *byteReader) (*cube.BPCube, bool, error) {
	present, err := r.byteVal()
	if err != nil {
		return nil, false, err
	}
	if present == 0 {
		return nil, false, nil
	}
	blob, err := lengthPrefixed(r)
	if err != nil {
		return nil, false, err
	}
	if len(blob) < 1 {
		return nil, false, corruptf("empty cube blob")
	}
	full := blob[0] != 0
	c, err := cube.ReadBinary(bytes.NewReader(blob[1:]))
	if err != nil {
		return nil, false, err
	}
	c.Full = full
	return c, full, nil
}

func lengthPrefixed(r *byteReader) ([]byte, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.remaining()) {
		return nil, corruptf("blob length %d exceeds %d remaining bytes", n, r.remaining())
	}
	return r.bytes(int(n))
}
