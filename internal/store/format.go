// Package store is the engine's disk-native columnar storage: a
// block-structured single-file container that serves scans through
// engine.Backend without materializing the table in memory.
//
// File layout (all integers little-endian):
//
//	┌────────────────────────────────────────────────────────┐
//	│ header   magic "AQPS" (4 B) + format version u32 (4 B) │
//	├────────────────────────────────────────────────────────┤
//	│ data     per column, per zone block (4096 rows):       │
//	│          1 encoding byte + encoded values              │
//	├────────────────────────────────────────────────────────┤
//	│ meta     schema, dictionaries, exact int64 bounds,     │
//	│          varint-delta block index, per-block zone      │
//	│          min/max summaries            (CRC32-checked)  │
//	├────────────────────────────────────────────────────────┤
//	│ prep     prepared handles: samples (legacy AQPT        │
//	│          streams), BP-cubes, min/max indexes,          │
//	│          confidence                   (CRC32-checked)  │
//	├────────────────────────────────────────────────────────┤
//	│ footer   48 B fixed: meta/prep extents + CRCs,         │
//	│          footer CRC, trailing magic                    │
//	└────────────────────────────────────────────────────────┘
//
// Blocks align to the engine's 4096-row zone blocks, so the zone
// summaries persisted here feed skip/full/straddle classification
// directly: a pruned block is never read from disk. Per-block encodings
// are chosen independently — varint-delta for non-decreasing int runs
// (clustered keys), dictionary codes as uvarints for strings, raw
// little-endian words otherwise.
package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// storeMagic brackets the file: it opens the header and closes the
// footer, so truncation at either end is detected before any parsing.
var storeMagic = [4]byte{'A', 'Q', 'P', 'S'}

const (
	formatVersion = 1

	// headerSize is magic + version.
	headerSize = 8

	// footerSize is the fixed trailer: metaOff, metaLen (u64), metaCRC
	// (u32), prepOff, prepLen (u64), prepCRC (u32), footerCRC (u32),
	// magic (4 B).
	footerSize = 8 + 8 + 4 + 8 + 8 + 4 + 4 + 4

	// blockRows mirrors the engine's zone block size; the formats are
	// coupled by design (one data block = one zone block).
	blockRows = 4096
)

// Block encodings, stored as the first byte of each block's payload.
const (
	encRawInt   = 0 // 8-byte little-endian words
	encDeltaInt = 1 // zigzag varint first value, uvarint deltas (non-decreasing runs)
	encRawFloat = 2 // 8-byte little-endian IEEE-754 bits
	encDictCode = 3 // uvarint dictionary codes
)

func checksum(b []byte) uint32 { return crc32.ChecksumIEEE(b) }

// ErrClosed is returned by block reads after Close.
var ErrClosed = errors.New("store: closed")

// corruptf wraps format-level failures so callers (and tests) can
// distinguish a corrupt file from an I/O error.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("store: corrupt file: "+format, args...)
}

// --- buffer-level encoding helpers -------------------------------------

func puv(b *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	b.Write(tmp[:n])
}

func pvarint(b *bytes.Buffer, v int64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], v)
	b.Write(tmp[:n])
}

func pstr(b *bytes.Buffer, s string) {
	puv(b, uint64(len(s)))
	b.WriteString(s)
}

func pf64(b *bytes.Buffer, f float64) {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(f))
	b.Write(tmp[:8])
}

// byteReader parses a checksummed section held fully in memory. Every
// accessor reports truncation as a corruption error rather than panicking.
type byteReader struct {
	data []byte
	pos  int
}

func (r *byteReader) remaining() int { return len(r.data) - r.pos }

func (r *byteReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		return 0, corruptf("truncated uvarint at offset %d", r.pos)
	}
	r.pos += n
	return v, nil
}

func (r *byteReader) varint() (int64, error) {
	v, n := binary.Varint(r.data[r.pos:])
	if n <= 0 {
		return 0, corruptf("truncated varint at offset %d", r.pos)
	}
	r.pos += n
	return v, nil
}

func (r *byteReader) bytes(n int) ([]byte, error) {
	if n < 0 || r.remaining() < n {
		return nil, corruptf("truncated section: need %d bytes, have %d", n, r.remaining())
	}
	b := r.data[r.pos : r.pos+n]
	r.pos += n
	return b, nil
}

func (r *byteReader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > 1<<24 {
		return "", corruptf("string length %d too large", n)
	}
	b, err := r.bytes(int(n))
	return string(b), err
}

func (r *byteReader) byteVal() (byte, error) {
	b, err := r.bytes(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *byteReader) f64() (float64, error) {
	b, err := r.bytes(8)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), nil
}
