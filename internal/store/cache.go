package store

import (
	"container/list"
	"sync"
	"sync/atomic"

	"aqppp/internal/engine"
)

// cacheEntryOverhead approximates the bookkeeping bytes per cached block
// (map bucket, list element, headers) so tiny tail blocks still count.
const cacheEntryOverhead = 128

// CacheStats is a point-in-time snapshot of the block cache counters.
// Hits and misses count block lookups; a miss implies one disk read and
// decode, so (pruned) blocks a scan never requests appear in neither.
type CacheStats struct {
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Evictions     uint64 `json:"evictions"`
	ResidentBytes int64  `json:"resident_bytes"`
	CapBytes      int64  `json:"cap_bytes"`
}

// blockCache is a byte-bounded LRU of decoded blocks shared by all of a
// store's columns, keyed col<<32|block. Views handed out stay valid
// after eviction (eviction drops the cache's reference, nothing more),
// which keeps the engine free to hold a view across other reads.
type blockCache struct {
	capBytes int64

	mu       sync.Mutex
	resident int64
	byKey    map[uint64]*list.Element
	lru      *list.List // front = most recently used

	hits, misses, evictions atomic.Uint64
	residentGauge           atomic.Int64
}

type cacheEntry struct {
	key  uint64
	view engine.BlockBuf
	size int64
}

func newBlockCache(capBytes int64) *blockCache {
	return &blockCache{
		capBytes: capBytes,
		byKey:    make(map[uint64]*list.Element),
		lru:      list.New(),
	}
}

func (c *blockCache) get(key uint64) (engine.BlockBuf, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses.Add(1)
		return engine.BlockBuf{}, false
	}
	c.hits.Add(1)
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).view, true
}

// put inserts a freshly decoded block and returns the view to use: when
// two goroutines race to decode the same block, the first insert wins
// and both share its view. The newest entry is never evicted, so a
// single block larger than the cap still scans correctly.
func (c *blockCache) put(key uint64, view engine.BlockBuf, size int64) engine.BlockBuf {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.lru.MoveToFront(el)
		return el.Value.(*cacheEntry).view
	}
	el := c.lru.PushFront(&cacheEntry{key: key, view: view, size: size})
	c.byKey[key] = el
	c.resident += size
	for c.resident > c.capBytes && c.lru.Len() > 1 {
		back := c.lru.Back()
		ent := back.Value.(*cacheEntry)
		c.lru.Remove(back)
		delete(c.byKey, ent.key)
		c.resident -= ent.size
		c.evictions.Add(1)
	}
	c.residentGauge.Store(c.resident)
	return view
}

func (c *blockCache) stats() CacheStats {
	return CacheStats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Evictions:     c.evictions.Load(),
		ResidentBytes: c.residentGauge.Load(),
		CapBytes:      c.capBytes,
	}
}
