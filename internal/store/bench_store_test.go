package store

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"aqppp/internal/engine"
	"aqppp/internal/stats"
)

// The store benchmark fixture: 1M rows, one container on disk, built
// once per process. The columns mirror the engine bench fixture —
// clustered int (delta-coded blocks, prunable zones), shuffled int (raw
// blocks), float measure, low-card string.
const benchStoreRows = 1 << 20

var benchStore struct {
	once sync.Once
	dir  string
	path string
	tbl  *engine.Table
}

func benchFixture(b *testing.B) (*engine.Table, string) {
	b.Helper()
	benchStore.once.Do(func() {
		r := stats.NewRNG(0x570e)
		n := benchStoreRows
		clustered := make([]int64, n)
		shuffled := make([]int64, n)
		v := make([]float64, n)
		cat := make([]string, n)
		cats := []string{"aa", "bb", "cc", "dd", "ee", "ff", "gg", "hh"}
		for i := 0; i < n; i++ {
			clustered[i] = int64(i)
			shuffled[i] = int64(r.Intn(n))
			v[i] = r.NormFloat64() * 100
			cat[i] = cats[r.Intn(len(cats))]
		}
		benchStore.tbl = engine.MustNewTable("bench",
			engine.NewIntColumn("clustered", clustered),
			engine.NewIntColumn("shuffled", shuffled),
			engine.NewFloatColumn("v", v),
			engine.NewStringColumn("cat", cat),
		)
		dir, err := os.MkdirTemp("", "aqppp-bench-store")
		if err != nil {
			panic(err)
		}
		benchStore.dir = dir
		benchStore.path = filepath.Join(dir, "bench.aqps")
		if err := Write(benchStore.path, benchStore.tbl, nil); err != nil {
			panic(err)
		}
	})
	return benchStore.tbl, benchStore.path
}

func TestMain(m *testing.M) {
	code := m.Run()
	if benchStore.dir != "" {
		os.RemoveAll(benchStore.dir)
	}
	os.Exit(code)
}

var benchFullSum = engine.Query{Func: engine.Sum, Col: "v",
	Ranges: []engine.Range{{Col: "shuffled", Lo: 0, Hi: benchStoreRows}}}

// benchSelective covers ~2% of the clustered domain: most blocks prune.
var benchSelective = engine.Query{Func: engine.Sum, Col: "v",
	Ranges: []engine.Range{{Col: "clustered", Lo: benchStoreRows / 2, Hi: benchStoreRows/2 + benchStoreRows/50}}}

// BenchmarkStoreOpen is the restart cost: map the container, verify
// checksums, parse metadata, bind the table. No data blocks.
func BenchmarkStoreOpen(b *testing.B) {
	_, path := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := Open(path, Options{})
		if err != nil {
			b.Fatal(err)
		}
		s.Close()
	}
}

// BenchmarkStoreWrite is the persistence cost: encode and fsync the
// full 1M-row container.
func BenchmarkStoreWrite(b *testing.B) {
	tbl, _ := benchFixture(b)
	out := filepath.Join(b.TempDir(), "w.aqps")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Write(out, tbl, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreScanMemory is the oracle: the same full-scan SUM on the
// resident table. The disk benchmarks below are read against this.
func BenchmarkStoreScanMemory(b *testing.B) {
	tbl, _ := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tbl.Execute(benchFullSum); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreScanWarm scans through a cache large enough to hold the
// working set: after the first pass every block is a cache hit, so this
// is the steady-state serving cost of a disk-backed table.
func BenchmarkStoreScanWarm(b *testing.B) {
	_, path := benchFixture(b)
	s, err := Open(path, Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Table().Execute(benchFullSum); err != nil { // fault everything in
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Table().Execute(benchFullSum); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreScanCold bounds the cache to a sliver of the working
// set, so every pass re-reads and re-decodes nearly every block: the
// decode-dominated worst case.
func BenchmarkStoreScanCold(b *testing.B) {
	_, path := benchFixture(b)
	s, err := Open(path, Options{CacheBytes: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Table().Execute(benchFullSum); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStorePrunedScan is the zone-map payoff on disk: a ~2% range
// on the clustered column faults a handful of blocks, the rest never
// leave the file.
func BenchmarkStorePrunedScan(b *testing.B) {
	_, path := benchFixture(b)
	s, err := Open(path, Options{CacheBytes: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Table().Execute(benchSelective); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreScanNoMmap is the portable-read-path tax: the cold scan
// again, served by ReadAt instead of the mapping.
func BenchmarkStoreScanNoMmap(b *testing.B) {
	_, path := benchFixture(b)
	s, err := Open(path, Options{CacheBytes: 1 << 20, NoMmap: true})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Table().Execute(benchFullSum); err != nil {
			b.Fatal(err)
		}
	}
}
