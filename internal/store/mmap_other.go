//go:build !unix

package store

import (
	"errors"
	"os"
)

// mapFile always fails on platforms without the unix mmap syscalls; the
// store serves every read through os.File.ReadAt instead. The fallback
// is exercised on unix too via Options.NoMmap.
func mapFile(*os.File, int64) ([]byte, error) {
	return nil, errors.New("store: mmap unavailable on this platform")
}

func unmapFile([]byte) error { return nil }
