package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"os"

	"aqppp/internal/engine"
)

// Write persists a resident table — and optionally its prepared handles
// (samples, cubes, min/max indexes) — as one store container at path.
// The write is atomic: data goes to path+".tmp" and is renamed into
// place only after a successful sync, so a crash never leaves a
// half-written store where a good one was expected.
//
// Backend-served tables cannot be re-written (their data already lives
// in a store container); Write refuses them.
func Write(path string, tbl *engine.Table, preps []Prep) error {
	if tbl.Backed() {
		return fmt.Errorf("store: table %q is already backend-served; copy it before re-writing", tbl.Name)
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	err = writeContainer(f, tbl, preps)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	return nil
}

func writeContainer(f *os.File, tbl *engine.Table, preps []Prep) error {
	w := bufio.NewWriterSize(f, 1<<20)
	var off int64

	// Header.
	var hdr [headerSize]byte
	copy(hdr[:4], storeMagic[:])
	binary.LittleEndian.PutUint32(hdr[4:8], formatVersion)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	off += headerSize

	// Data blocks, column-major; collect per-column metadata as we go.
	n := tbl.NumRows()
	nb := (n + blockRows - 1) / blockRows
	cols := make([]colMeta, len(tbl.Columns))
	var scratch bytes.Buffer
	for ci, c := range tbl.Columns {
		cm := &cols[ci]
		cm.name = c.Name
		cm.typ = c.Type
		cm.offs = make([]int64, nb+1)
		cm.mins = make([]float64, nb)
		cm.maxs = make([]float64, nb)
		if c.Type == engine.String {
			cm.dict = c.Dict
		}
		if c.Type == engine.Int64 && n > 0 {
			cm.hasBounds = true
			cm.loBound, cm.hiBound = c.Ints[0], c.Ints[0]
			for _, v := range c.Ints[1:] {
				if v < cm.loBound {
					cm.loBound = v
				}
				if v > cm.hiBound {
					cm.hiBound = v
				}
			}
		}
		for b := 0; b < nb; b++ {
			lo := b * blockRows
			hi := lo + blockRows
			if hi > n {
				hi = n
			}
			cm.offs[b] = off
			scratch.Reset()
			encodeBlock(&scratch, c, lo, hi)
			if _, err := w.Write(scratch.Bytes()); err != nil {
				return err
			}
			off += int64(scratch.Len())
			mn := c.Ordinal(lo)
			mx := mn
			for i := lo + 1; i < hi; i++ {
				v := c.Ordinal(i)
				if v < mn {
					mn = v
				}
				if v > mx {
					mx = v
				}
			}
			cm.mins[b] = mn
			cm.maxs[b] = mx
		}
		cm.offs[nb] = off
	}

	// Meta section.
	var meta bytes.Buffer
	encodeMeta(&meta, tbl.Name, n, cols)
	metaOff, metaLen := off, int64(meta.Len())
	if _, err := w.Write(meta.Bytes()); err != nil {
		return err
	}
	off += metaLen

	// Prep section.
	var prep bytes.Buffer
	if err := encodePreps(&prep, preps); err != nil {
		return err
	}
	prepOff, prepLen := off, int64(prep.Len())
	if _, err := w.Write(prep.Bytes()); err != nil {
		return err
	}

	// Footer.
	var ftr [footerSize]byte
	binary.LittleEndian.PutUint64(ftr[0:8], uint64(metaOff))
	binary.LittleEndian.PutUint64(ftr[8:16], uint64(metaLen))
	binary.LittleEndian.PutUint32(ftr[16:20], checksum(meta.Bytes()))
	binary.LittleEndian.PutUint64(ftr[20:28], uint64(prepOff))
	binary.LittleEndian.PutUint64(ftr[28:36], uint64(prepLen))
	binary.LittleEndian.PutUint32(ftr[36:40], checksum(prep.Bytes()))
	binary.LittleEndian.PutUint32(ftr[40:44], checksum(ftr[:40]))
	copy(ftr[44:48], storeMagic[:])
	if _, err := w.Write(ftr[:]); err != nil {
		return err
	}
	return w.Flush()
}

// encodeBlock writes rows [lo, hi) of c as one block: encoding byte +
// payload. Int blocks use varint-delta when the run is non-decreasing
// (the clustered-key case where it wins), raw words otherwise.
func encodeBlock(b *bytes.Buffer, c *engine.Column, lo, hi int) {
	switch c.Type {
	case engine.Int64:
		vals := c.Ints[lo:hi]
		sorted := true
		for i := 1; i < len(vals); i++ {
			if vals[i] < vals[i-1] {
				sorted = false
				break
			}
		}
		if sorted && len(vals) > 0 {
			b.WriteByte(encDeltaInt)
			pvarint(b, vals[0])
			for i := 1; i < len(vals); i++ {
				// Non-decreasing, so the wrapped uint64 difference is the
				// exact magnitude even across the int64 midpoint.
				puv(b, uint64(vals[i])-uint64(vals[i-1]))
			}
			return
		}
		b.WriteByte(encRawInt)
		var tmp [8]byte
		for _, v := range vals {
			binary.LittleEndian.PutUint64(tmp[:], uint64(v))
			b.Write(tmp[:])
		}
	case engine.Float64:
		b.WriteByte(encRawFloat)
		var tmp [8]byte
		for _, v := range c.Floats[lo:hi] {
			binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v))
			b.Write(tmp[:])
		}
	default:
		b.WriteByte(encDictCode)
		for _, code := range c.Codes[lo:hi] {
			puv(b, uint64(code))
		}
	}
}

func encodeMeta(b *bytes.Buffer, name string, rows int, cols []colMeta) {
	pstr(b, name)
	puv(b, uint64(rows))
	puv(b, uint64(len(cols)))
	for i := range cols {
		cm := &cols[i]
		pstr(b, cm.name)
		b.WriteByte(byte(cm.typ))
		if cm.typ == engine.String {
			puv(b, uint64(len(cm.dict)))
			for _, s := range cm.dict {
				pstr(b, s)
			}
		}
		if cm.typ == engine.Int64 {
			if cm.hasBounds {
				b.WriteByte(1)
				pvarint(b, cm.loBound)
				pvarint(b, cm.hiBound)
			} else {
				b.WriteByte(0)
			}
		}
		nb := len(cm.offs) - 1
		puv(b, uint64(nb))
		// Block index, varint-delta: absolute first offset, then block
		// lengths. nb+1 offsets reconstruct every block's extent.
		if nb >= 0 {
			puv(b, uint64(cm.offs[0]))
			for j := 1; j <= nb; j++ {
				puv(b, uint64(cm.offs[j]-cm.offs[j-1]))
			}
		}
		for j := 0; j < nb; j++ {
			pf64(b, cm.mins[j])
			pf64(b, cm.maxs[j])
		}
	}
}
