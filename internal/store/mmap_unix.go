//go:build unix

package store

import (
	"errors"
	"os"
	"syscall"
)

// mapFile maps the whole file read-only. Callers fall back to ReadAt on
// any error, so "cannot map" is never fatal.
func mapFile(f *os.File, size int64) ([]byte, error) {
	if size <= 0 || int64(int(size)) != size {
		return nil, errors.New("store: file size not mappable")
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func unmapFile(b []byte) error { return syscall.Munmap(b) }
