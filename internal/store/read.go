package store

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sync"

	"aqppp/internal/engine"
)

// DefaultCacheBytes bounds the decoded-block cache when Options leaves
// CacheBytes zero: 64 MiB, a few thousand resident blocks.
const DefaultCacheBytes = 64 << 20

// Options configures Open.
type Options struct {
	// CacheBytes bounds the decoded-block cache (0 = DefaultCacheBytes).
	CacheBytes int64
	// NoMmap forces the portable ReadAt path even where mmap works;
	// platforms without mmap support always take it.
	NoMmap bool
}

// colMeta is one column's resident metadata: schema, dictionary, exact
// integer bounds, block index and zone summaries. Everything the engine
// consults at plan time lives here; block payloads stay on disk.
type colMeta struct {
	name string
	typ  engine.ColType
	dict []string

	hasBounds        bool
	loBound, hiBound int64

	// offs[b] is the file offset of block b's payload; offs[nb] closes
	// the last block, so block b spans [offs[b], offs[b+1]).
	offs []int64
	// mins/maxs are the per-block zone summaries, in ordinal space.
	mins, maxs []float64
}

// Store is an open container. It implements engine.Backend; Table()
// returns the lazily-faulting table bound over it.
type Store struct {
	path     string
	fileSize int64

	f    *os.File
	data []byte // mmap; nil on the portable path

	mu     sync.RWMutex // guards f/data against Close during raw reads
	closed bool

	name  string
	rows  int
	cols  []colMeta
	srcs  []*colSource
	tbl   *engine.Table
	preps []Prep
	cache *blockCache
}

// Open maps (or opens) the container at path, verifies its checksums,
// parses the metadata and prep sections, and binds an engine table over
// it. No data blocks are read: opening is metadata-sized work, and the
// first scan faults only the blocks its zone maps cannot prune.
func Open(path string, opts Options) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	s, err := openFile(f, path, opts)
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	return s, nil
}

func openFile(f *os.File, path string, opts Options) (*Store, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size < headerSize+footerSize {
		return nil, corruptf("%d bytes is smaller than header+footer", size)
	}
	cacheBytes := opts.CacheBytes
	if cacheBytes <= 0 {
		cacheBytes = DefaultCacheBytes
	}
	s := &Store{path: path, f: f, fileSize: size, cache: newBlockCache(cacheBytes)}
	if !opts.NoMmap {
		if data, err := mapFile(f, size); err == nil {
			s.data = data
		}
	}

	var hdr [headerSize]byte
	if _, err := s.rawRead(hdr[:], 0); err != nil {
		return nil, err
	}
	if [4]byte(hdr[:4]) != storeMagic {
		return nil, corruptf("bad magic %q", hdr[:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != formatVersion {
		return nil, fmt.Errorf("store: unsupported format version %d", v)
	}

	var ftr [footerSize]byte
	if _, err := s.rawRead(ftr[:], size-footerSize); err != nil {
		return nil, err
	}
	if [4]byte(ftr[44:48]) != storeMagic {
		return nil, corruptf("truncated footer (bad trailing magic %q)", ftr[44:48])
	}
	if got, want := checksum(ftr[:40]), binary.LittleEndian.Uint32(ftr[40:44]); got != want {
		return nil, corruptf("footer checksum %08x, want %08x", got, want)
	}
	metaOff := int64(binary.LittleEndian.Uint64(ftr[0:8]))
	metaLen := int64(binary.LittleEndian.Uint64(ftr[8:16]))
	metaCRC := binary.LittleEndian.Uint32(ftr[16:20])
	prepOff := int64(binary.LittleEndian.Uint64(ftr[20:28]))
	prepLen := int64(binary.LittleEndian.Uint64(ftr[28:36]))
	prepCRC := binary.LittleEndian.Uint32(ftr[36:40])
	limit := size - footerSize
	if metaOff < headerSize || metaLen < 0 || metaOff+metaLen > limit {
		return nil, corruptf("meta section [%d, %d) out of bounds", metaOff, metaOff+metaLen)
	}
	if prepOff < headerSize || prepLen < 0 || prepOff+prepLen > limit {
		return nil, corruptf("prep section [%d, %d) out of bounds", prepOff, prepOff+prepLen)
	}

	meta := make([]byte, metaLen)
	if _, err := s.rawRead(meta, metaOff); err != nil {
		return nil, err
	}
	if got := checksum(meta); got != metaCRC {
		return nil, corruptf("meta checksum %08x, want %08x", got, metaCRC)
	}
	if err := s.parseMeta(meta, metaOff); err != nil {
		return nil, err
	}

	prep := make([]byte, prepLen)
	if _, err := s.rawRead(prep, prepOff); err != nil {
		return nil, err
	}
	if got := checksum(prep); got != prepCRC {
		return nil, corruptf("prep checksum %08x, want %08x", got, prepCRC)
	}
	if s.preps, err = decodePreps(prep); err != nil {
		return nil, err
	}

	s.srcs = make([]*colSource, len(s.cols))
	for i := range s.srcs {
		s.srcs[i] = &colSource{s: s, ci: i}
	}
	if s.tbl, err = engine.OpenBackend(s); err != nil {
		return nil, err
	}
	return s, nil
}

// parseMeta decodes the meta section and cross-checks the block index
// against the row count and the data region [headerSize, metaOff).
func (s *Store) parseMeta(meta []byte, metaOff int64) error {
	r := &byteReader{data: meta}
	var err error
	if s.name, err = r.str(); err != nil {
		return err
	}
	rows, err := r.uvarint()
	if err != nil {
		return err
	}
	s.rows = int(rows)
	ncols, err := r.uvarint()
	if err != nil {
		return err
	}
	if ncols > 1<<16 {
		return corruptf("%d columns is implausible", ncols)
	}
	wantNB := (s.rows + blockRows - 1) / blockRows
	s.cols = make([]colMeta, ncols)
	for i := range s.cols {
		cm := &s.cols[i]
		if cm.name, err = r.str(); err != nil {
			return err
		}
		tb, err := r.byteVal()
		if err != nil {
			return err
		}
		cm.typ = engine.ColType(tb)
		switch cm.typ {
		case engine.Int64, engine.Float64, engine.String:
		default:
			return corruptf("column %q has unknown type byte %d", cm.name, tb)
		}
		if cm.typ == engine.String {
			nd, err := r.uvarint()
			if err != nil {
				return err
			}
			if nd > 1<<31 {
				return corruptf("column %q dictionary size %d is implausible", cm.name, nd)
			}
			cm.dict = make([]string, nd)
			for j := range cm.dict {
				if cm.dict[j], err = r.str(); err != nil {
					return err
				}
			}
		}
		if cm.typ == engine.Int64 {
			flag, err := r.byteVal()
			if err != nil {
				return err
			}
			if flag != 0 {
				cm.hasBounds = true
				if cm.loBound, err = r.varint(); err != nil {
					return err
				}
				if cm.hiBound, err = r.varint(); err != nil {
					return err
				}
			}
		}
		nb, err := r.uvarint()
		if err != nil {
			return err
		}
		if int(nb) != wantNB {
			return corruptf("column %q has %d blocks in its index but %d rows imply %d",
				cm.name, nb, s.rows, wantNB)
		}
		cm.offs = make([]int64, nb+1)
		first, err := r.uvarint()
		if err != nil {
			return err
		}
		cm.offs[0] = int64(first)
		for j := 1; j <= int(nb); j++ {
			d, err := r.uvarint()
			if err != nil {
				return err
			}
			cm.offs[j] = cm.offs[j-1] + int64(d)
		}
		if nb > 0 && (cm.offs[0] < headerSize || cm.offs[nb] > metaOff) {
			return corruptf("column %q block index [%d, %d) escapes the data region [%d, %d)",
				cm.name, cm.offs[0], cm.offs[nb], headerSize, metaOff)
		}
		cm.mins = make([]float64, nb)
		cm.maxs = make([]float64, nb)
		for j := 0; j < int(nb); j++ {
			if cm.mins[j], err = r.f64(); err != nil {
				return err
			}
			if cm.maxs[j], err = r.f64(); err != nil {
				return err
			}
		}
	}
	if r.remaining() != 0 {
		return corruptf("%d trailing bytes after meta", r.remaining())
	}
	return nil
}

// rawRead fills dst from absolute file offset off, from the mapping when
// present. The RLock holds Close off while raw bytes are in use.
func (s *Store) rawRead(dst []byte, off int64) (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return 0, ErrClosed
	}
	if s.data != nil {
		if off < 0 || off+int64(len(dst)) > int64(len(s.data)) {
			return 0, corruptf("read [%d, %d) beyond mapped %d bytes", off, off+int64(len(dst)), len(s.data))
		}
		return copy(dst, s.data[off:]), nil
	}
	return io.ReadFull(io.NewSectionReader(s.f, off, int64(len(dst))), dst)
}

// Close releases the mapping and file handle. Decoded blocks already in
// the cache stay valid (they own their slices); subsequent cache misses
// fail with ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	if s.data != nil {
		err = unmapFile(s.data)
		s.data = nil
	}
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Table returns the engine table bound over this store. Scans fault
// blocks through the cache; zone-pruned blocks are never read.
func (s *Store) Table() *engine.Table { return s.tbl }

// Preps returns the prepared handles persisted in the container.
func (s *Store) Preps() []Prep { return s.preps }

// Path returns the file the store was opened from.
func (s *Store) Path() string { return s.path }

// Mmapped reports whether the store serves reads from a memory mapping
// (false on platforms without mmap or with Options.NoMmap).
func (s *Store) Mmapped() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.data != nil
}

// CacheStats returns the block cache counters.
func (s *Store) CacheStats() CacheStats { return s.cache.stats() }

// Snapshot summarizes the store for observability surfaces (/statusz).
func (s *Store) Snapshot() Snapshot {
	names := make([]string, len(s.preps))
	for i := range s.preps {
		names[i] = s.preps[i].Name
	}
	return Snapshot{
		Path:      s.path,
		Table:     s.name,
		Rows:      s.rows,
		Cols:      len(s.cols),
		Blocks:    (s.rows + blockRows - 1) / blockRows,
		FileBytes: s.fileSize,
		Mmap:      s.Mmapped(),
		Preps:     names,
		Cache:     s.CacheStats(),
	}
}

// Snapshot is a point-in-time description of one open store.
type Snapshot struct {
	Path      string     `json:"path"`
	Table     string     `json:"table"`
	Rows      int        `json:"rows"`
	Cols      int        `json:"cols"`
	Blocks    int        `json:"blocks"`
	FileBytes int64      `json:"file_bytes"`
	Mmap      bool       `json:"mmap"`
	Preps     []string   `json:"preps,omitempty"`
	Cache     CacheStats `json:"cache"`
}

// --- engine.Backend ----------------------------------------------------

// TableName implements engine.Backend.
func (s *Store) TableName() string { return s.name }

// NumRows implements engine.Backend.
func (s *Store) NumRows() int { return s.rows }

// Schema implements engine.Backend.
func (s *Store) Schema() engine.Schema {
	sch := engine.Schema{
		Names: make([]string, len(s.cols)),
		Types: make([]engine.ColType, len(s.cols)),
	}
	for i := range s.cols {
		sch.Names[i] = s.cols[i].name
		sch.Types[i] = s.cols[i].typ
	}
	return sch
}

// Dict implements engine.Backend.
func (s *Store) Dict(col int) []string { return s.cols[col].dict }

// Source implements engine.Backend.
func (s *Store) Source(col int) engine.ColumnSource { return s.srcs[col] }

// colSource serves one column's blocks through the store's shared cache.
type colSource struct {
	s  *Store
	ci int
}

// ReadBlock implements engine.ColumnSource. Cached blocks are returned
// as shared immutable views (the caller's buf is ignored); misses decode
// under the read lock so Close cannot unmap mid-decode.
func (cs *colSource) ReadBlock(b int, _ *engine.BlockBuf) (engine.BlockBuf, error) {
	key := uint64(cs.ci)<<32 | uint64(uint32(b))
	if v, ok := cs.s.cache.get(key); ok {
		return v, nil
	}
	v, size, err := cs.s.decodeBlock(cs.ci, b)
	if err != nil {
		return engine.BlockBuf{}, err
	}
	return cs.s.cache.put(key, v, size), nil
}

// BlockZones implements engine.ColumnSource: the summaries persisted at
// write time, resident since Open.
func (cs *colSource) BlockZones() (mins, maxs []float64) {
	cm := &cs.s.cols[cs.ci]
	return cm.mins, cm.maxs
}

// IntBounds implements engine.IntBoundsSource for Int64 columns, giving
// the group-by planner exact bounds without a scan.
func (cs *colSource) IntBounds() (lo, hi int64, ok bool) {
	cm := &cs.s.cols[cs.ci]
	return cm.loBound, cm.hiBound, cm.hasBounds
}

// decodeBlock reads and decodes block b of column ci into fresh slices
// (they become shared cache views, so no buffer reuse).
func (s *Store) decodeBlock(ci, b int) (engine.BlockBuf, int64, error) {
	cm := &s.cols[ci]
	if b < 0 || b+1 >= len(cm.offs) {
		return engine.BlockBuf{}, 0, fmt.Errorf("store: column %q has no block %d", cm.name, b)
	}
	lo := b * blockRows
	hi := lo + blockRows
	if hi > s.rows {
		hi = s.rows
	}
	nrows := hi - lo
	blen := cm.offs[b+1] - cm.offs[b]
	if blen <= 0 {
		return engine.BlockBuf{}, 0, corruptf("column %q block %d has length %d", cm.name, b, blen)
	}
	raw := make([]byte, blen)
	if _, err := s.rawRead(raw, cm.offs[b]); err != nil {
		return engine.BlockBuf{}, 0, fmt.Errorf("store: column %q block %d: %w", cm.name, b, err)
	}
	enc, payload := raw[0], raw[1:]
	var buf engine.BlockBuf
	switch cm.typ {
	case engine.Int64:
		vals := make([]int64, nrows)
		switch enc {
		case encRawInt:
			if len(payload) != nrows*8 {
				return engine.BlockBuf{}, 0, corruptf("column %q block %d: %d payload bytes for %d raw ints",
					cm.name, b, len(payload), nrows)
			}
			for i := range vals {
				vals[i] = int64(binary.LittleEndian.Uint64(payload[i*8:]))
			}
		case encDeltaInt:
			r := &byteReader{data: payload}
			v, err := r.varint()
			if err != nil {
				return engine.BlockBuf{}, 0, err
			}
			vals[0] = v
			for i := 1; i < nrows; i++ {
				d, err := r.uvarint()
				if err != nil {
					return engine.BlockBuf{}, 0, err
				}
				vals[i] = int64(uint64(vals[i-1]) + d)
			}
			if r.remaining() != 0 {
				return engine.BlockBuf{}, 0, corruptf("column %q block %d: %d trailing bytes", cm.name, b, r.remaining())
			}
		default:
			return engine.BlockBuf{}, 0, corruptf("column %q block %d: encoding %d for int column", cm.name, b, enc)
		}
		buf.Ints = vals
	case engine.Float64:
		if enc != encRawFloat {
			return engine.BlockBuf{}, 0, corruptf("column %q block %d: encoding %d for float column", cm.name, b, enc)
		}
		if len(payload) != nrows*8 {
			return engine.BlockBuf{}, 0, corruptf("column %q block %d: %d payload bytes for %d floats",
				cm.name, b, len(payload), nrows)
		}
		vals := make([]float64, nrows)
		for i := range vals {
			vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[i*8:]))
		}
		buf.Floats = vals
	default:
		if enc != encDictCode {
			return engine.BlockBuf{}, 0, corruptf("column %q block %d: encoding %d for string column", cm.name, b, enc)
		}
		r := &byteReader{data: payload}
		codes := make([]int32, nrows)
		for i := range codes {
			v, err := r.uvarint()
			if err != nil {
				return engine.BlockBuf{}, 0, err
			}
			if v >= uint64(len(cm.dict)) {
				return engine.BlockBuf{}, 0, corruptf("column %q block %d: code %d outside dictionary of %d",
					cm.name, b, v, len(cm.dict))
			}
			codes[i] = int32(v)
		}
		if r.remaining() != 0 {
			return engine.BlockBuf{}, 0, corruptf("column %q block %d: %d trailing bytes", cm.name, b, r.remaining())
		}
		buf.Codes = codes
	}
	return buf, int64(nrows)*8 + cacheEntryOverhead, nil
}
