package precompute

import (
	"fmt"
	"math"
)

// ShapeResult reports the multidimensional budget split.
type ShapeResult struct {
	// Ks is the per-dimension budget k_i with ∏k_i <= budget.
	Ks []int
	// Err is the resulting bound max_i ErrorAt(k_i): the error level the
	// binary search converged to.
	Err float64
}

// DetermineShape splits a total cell budget across dimensions using the
// paper's Figure 6 binary search: it searches the error axis for the
// lowest common error level e whose per-dimension budgets KFor(e) still
// multiply within the budget, then greedily spends any leftover budget on
// the dimension whose error it reduces most.
func DetermineShape(profiles []*Profile, budget int) (ShapeResult, error) {
	d := len(profiles)
	if d == 0 {
		return ShapeResult{}, fmt.Errorf("precompute: no profiles")
	}
	if budget < 1 {
		return ShapeResult{}, fmt.Errorf("precompute: budget %d < 1", budget)
	}
	hiErr := 0.0
	for _, p := range profiles {
		if e := p.ErrorAt(1); e > hiErr {
			hiErr = e
		}
	}
	fits := func(e float64) ([]int, bool) {
		ks := make([]int, d)
		prod := 1
		for i, p := range profiles {
			ks[i] = p.KFor(e)
			if ks[i] < 1 {
				ks[i] = 1
			}
			// prod <= budget here and k_i <= MaxK, so the product fits
			// comfortably in int64 on 64-bit platforms.
			prod *= ks[i]
			if prod > budget {
				return nil, false
			}
		}
		return ks, true
	}
	lo, hi := 0.0, hiErr
	best, ok := fits(hi)
	if !ok {
		// Even the one-point-per-dimension cube exceeds the budget.
		if pow := int(math.Pow(float64(budget), 1/float64(d))); pow >= 1 {
			ks := make([]int, d)
			for i := range ks {
				ks[i] = 1
			}
			return ShapeResult{Ks: ks, Err: hiErr}, nil
		}
	}
	for iter := 0; iter < 60; iter++ {
		mid := (lo + hi) / 2
		if ks, ok := fits(mid); ok {
			best = ks
			hi = mid
		} else {
			lo = mid
		}
	}
	if best == nil {
		best = make([]int, d)
		for i := range best {
			best[i] = 1
		}
	}
	// Spend leftover budget greedily: bump the dimension with the largest
	// current error while the product stays within budget.
	for {
		prod := 1
		for _, k := range best {
			prod *= k
		}
		bestDim := -1
		bestGain := 0.0
		for i, p := range profiles {
			if best[i] >= p.MaxK {
				continue
			}
			newProd := prod / best[i] * (best[i] + 1)
			if newProd > budget {
				continue
			}
			gain := p.ErrorAt(best[i]) - p.ErrorAt(best[i]+1)
			if gain > bestGain {
				bestGain = gain
				bestDim = i
			}
		}
		if bestDim < 0 {
			break
		}
		best[bestDim]++
	}
	errMax := 0.0
	for i, p := range profiles {
		if e := p.ErrorAt(best[i]); e > errMax {
			errMax = e
		}
	}
	return ShapeResult{Ks: best, Err: errMax}, nil
}

// AllocateBudget splits a total cell budget across multiple query
// templates (Appendix C, "Multiple Query Templates"): binary search on a
// common error target e, where each template's required budget is the
// smallest b with errAt(t, b) <= e. errAt must be non-increasing in b.
func AllocateBudget(errAt []func(budget int) float64, total int) ([]int, error) {
	t := len(errAt)
	if t == 0 {
		return nil, fmt.Errorf("precompute: no templates")
	}
	if total < t {
		return nil, fmt.Errorf("precompute: budget %d below one cell per template", total)
	}
	need := func(f func(int) float64, e float64) int {
		lo, hi := 1, total
		for lo < hi {
			mid := (lo + hi) / 2
			if f(mid) <= e {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		return lo
	}
	hiErr := 0.0
	for _, f := range errAt {
		if e := f(1); e > hiErr {
			hiErr = e
		}
	}
	alloc := make([]int, t)
	lo, hi := 0.0, hiErr
	assign := func(e float64) ([]int, bool) {
		out := make([]int, t)
		sum := 0
		for i, f := range errAt {
			out[i] = need(f, e)
			sum += out[i]
			if sum > total {
				return nil, false
			}
		}
		return out, true
	}
	if a, ok := assign(hi); ok {
		alloc = a
	} else {
		for i := range alloc {
			alloc[i] = total / t
		}
		return alloc, nil
	}
	for iter := 0; iter < 50; iter++ {
		mid := (lo + hi) / 2
		if a, ok := assign(mid); ok {
			alloc = a
			hi = mid
		} else {
			lo = mid
		}
	}
	// Distribute any remainder evenly.
	sum := 0
	for _, b := range alloc {
		sum += b
	}
	if rem := total - sum; rem > 0 {
		per := rem / t
		for i := range alloc {
			alloc[i] += per
		}
		alloc[t-1] += rem % t
	}
	return alloc, nil
}
