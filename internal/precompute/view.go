// Package precompute implements aggregate precomputation (§6 of the
// paper): choosing which BP-Cube to build under a cell budget. It provides
// the equal-partition scheme (optimal under Theorem 1's assumptions), the
// hill-climbing refinement that adapts to data distribution and attribute
// correlation, per-dimension error profiles, the binary-search shape
// determination for multidimensional cubes (Figure 6), and the budget
// allocation across multiple query templates (Appendix C).
//
// All optimization runs on a sample (the paper's first stage); only the
// final cube construction scans the full data.
package precompute

import (
	"fmt"
	"math"
	"sort"

	"aqppp/internal/engine"
	"aqppp/internal/sample"
	"aqppp/internal/stats"
)

// View is the 1-D optimizer's working representation: the sample's
// aggregation values ordered by one condition attribute's ordinals, with
// prefix sums for O(1) region-variance queries.
//
// Positions are cut indices in [0, n]: cut i splits rows [0, i) from
// [i, n). A cut is feasible when it does not split equal C ordinals (the
// data-distribution constraint of Figure 4a); cut 0 and cut n are always
// feasible.
type View struct {
	// A holds the aggregation values sorted ascending by C.
	A []float64
	// C holds the corresponding condition ordinals (ascending).
	C []float64
	// N is the source table's row count, n is len(A); together with
	// Lambda they scale region deviations into the paper's query errors
	// ε = λ·N·sqrt(Var/n).
	N      int
	Lambda float64

	prefA  []float64 // prefA[i]  = Σ A[0:i]
	prefA2 []float64 // prefA2[i] = Σ A[0:i]²
}

// NewView builds a view of the sample's aggCol ordered by condCol. An
// empty aggCol means COUNT (all-ones values). Lambda defaults from the
// confidence level (e.g. 0.95 → 1.96).
func NewView(s *sample.Sample, aggCol, condCol string, confidence float64) (*View, error) {
	idx, err := s.Table.SortedIndexByOrdinal(condCol)
	if err != nil {
		return nil, err
	}
	ccol, err := s.Table.Column(condCol)
	if err != nil {
		return nil, err
	}
	var acol *engine.Column
	if aggCol != "" {
		acol, err = s.Table.Column(aggCol)
		if err != nil {
			return nil, err
		}
	}
	n := len(idx)
	v := &View{
		A:      make([]float64, n),
		C:      make([]float64, n),
		N:      s.SourceRows,
		Lambda: stats.ZScore(confidence),
	}
	for i, row := range idx {
		if acol != nil {
			v.A[i] = acol.Float(row)
		} else {
			v.A[i] = 1
		}
		v.C[i] = ccol.Ordinal(row)
	}
	v.buildPrefix()
	return v, nil
}

// NewViewFromSlices builds a view directly from parallel A/C slices (not
// necessarily sorted); used by tests and synthetic studies.
func NewViewFromSlices(a, c []float64, sourceRows int, confidence float64) *View {
	if len(a) != len(c) {
		panic("precompute: A/C length mismatch")
	}
	idx := make([]int, len(a))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(x, y int) bool { return c[idx[x]] < c[idx[y]] })
	v := &View{
		A:      make([]float64, len(a)),
		C:      make([]float64, len(c)),
		N:      sourceRows,
		Lambda: stats.ZScore(confidence),
	}
	for i, j := range idx {
		v.A[i] = a[j]
		v.C[i] = c[j]
	}
	v.buildPrefix()
	return v
}

func (v *View) buildPrefix() {
	n := len(v.A)
	v.prefA = make([]float64, n+1)
	v.prefA2 = make([]float64, n+1)
	for i, x := range v.A {
		v.prefA[i+1] = v.prefA[i] + x
		v.prefA2[i+1] = v.prefA2[i] + x*x
	}
}

// Len returns the number of sample rows in the view.
func (v *View) Len() int { return len(v.A) }

// regionDeviation returns sqrt(Var(A·1[rows lo..hi)])) where the variance
// is over all n rows with zeros outside [lo, hi) — the paper's
// Var(A·cond(C∈L)) — in O(1) via prefix sums.
func (v *View) regionDeviation(lo, hi int) float64 {
	n := float64(len(v.A))
	if n == 0 || lo >= hi {
		return 0
	}
	s := v.prefA[hi] - v.prefA[lo]
	s2 := v.prefA2[hi] - v.prefA2[lo]
	variance := s2/n - (s/n)*(s/n)
	if variance < 0 {
		variance = 0 // numeric guard
	}
	return math.Sqrt(variance)
}

// errScale converts a deviation into the paper's ε units: λ·N/√n.
func (v *View) errScale() float64 {
	n := float64(len(v.A))
	if n == 0 {
		return 0
	}
	return v.Lambda * float64(v.N) / math.Sqrt(n)
}

// Feasible reports whether cut position i does not split duplicate C
// ordinals.
func (v *View) Feasible(i int) bool {
	if i <= 0 || i >= len(v.C) {
		return true
	}
	return !stats.ExactEqual(v.C[i], v.C[i-1])
}

// SnapFeasible returns the feasible cut position closest to i (ties break
// toward the left), or -1 if none exists strictly inside (0, n). This is
// the initialization rule of §6.1.2(1).
func (v *View) SnapFeasible(i int) int {
	n := len(v.C)
	if i < 0 {
		i = 0
	}
	if i > n {
		i = n
	}
	for d := 0; d < n; d++ {
		if l := i - d; l > 0 && l < n && v.Feasible(l) {
			return l
		}
		if r := i + d; r > 0 && r < n && v.Feasible(r) {
			return r
		}
	}
	return -1
}

// CutsToPoints converts cut positions (ascending, last == n) into BP-Cube
// partition-point ordinals: cut c maps to the ordinal of the last row
// before it. Cuts must be feasible so the ordinals are strictly ascending.
func (v *View) CutsToPoints(cuts []int) ([]float64, error) {
	pts := make([]float64, 0, len(cuts))
	for _, c := range cuts {
		if c <= 0 || c > len(v.C) {
			return nil, fmt.Errorf("precompute: cut %d out of range", c)
		}
		if !v.Feasible(c) {
			return nil, fmt.Errorf("precompute: cut %d splits duplicate ordinals", c)
		}
		pts = append(pts, v.C[c-1])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i] <= pts[i-1] {
			return nil, fmt.Errorf("precompute: cuts produce non-ascending ordinals")
		}
	}
	return pts, nil
}
