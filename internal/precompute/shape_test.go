package precompute

import (
	"context"
	"math"
	"testing"

	"aqppp/internal/stats"
)

func TestBuildProfileMonotone(t *testing.T) {
	v := iidView(800, 20)
	p, err := BuildProfile(context.Background(), v, 100, 6, ClimbConfig{Mode: Global, MaxIterations: 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(p.Es); i++ {
		if p.Es[i] > p.Es[i-1] {
			t.Errorf("profile not monotone at anchor %d", i)
		}
	}
	if p.Ks[0] != 1 {
		t.Errorf("first anchor = %d", p.Ks[0])
	}
	if p.Ks[len(p.Ks)-1] > p.MaxK {
		t.Errorf("last anchor %d beyond MaxK %d", p.Ks[len(p.Ks)-1], p.MaxK)
	}
}

func TestProfileInterpolation(t *testing.T) {
	p := &Profile{Ks: []int{1, 4, 16}, Es: []float64{8, 4, 2}, MaxK: 1000}
	// Exact at anchors.
	for i, k := range p.Ks {
		if got := p.ErrorAt(k); math.Abs(got-p.Es[i]) > 1e-12 {
			t.Errorf("ErrorAt(%d) = %v, want %v", k, got, p.Es[i])
		}
	}
	// Between anchors: monotone and within the bracketing errors.
	if e := p.ErrorAt(8); e >= 4 || e <= 2 {
		t.Errorf("ErrorAt(8) = %v, want in (2, 4)", e)
	}
	// Extrapolation follows 1/√k decay.
	if e := p.ErrorAt(64); math.Abs(e-2*math.Sqrt(16.0/64)) > 1e-9 {
		t.Errorf("ErrorAt(64) = %v", e)
	}
	// At MaxK the error vanishes.
	if e := p.ErrorAt(1000); e != 0 {
		t.Errorf("ErrorAt(MaxK) = %v", e)
	}
	if e := p.ErrorAt(0); e != p.ErrorAt(1) {
		t.Error("k<1 should clamp to 1")
	}
}

func TestProfileKForInvertsErrorAt(t *testing.T) {
	p := &Profile{Ks: []int{1, 4, 16}, Es: []float64{8, 4, 2}, MaxK: 500}
	for _, e := range []float64{8, 5, 4, 3, 2, 1, 0.5} {
		k := p.KFor(e)
		if p.ErrorAt(k) > e+1e-9 {
			t.Errorf("KFor(%v) = %d but ErrorAt = %v", e, k, p.ErrorAt(k))
		}
		if k > 1 && p.ErrorAt(k-1) <= e-1e-9 {
			t.Errorf("KFor(%v) = %d not minimal", e, k)
		}
	}
	if k := p.KFor(0); k != 500 {
		t.Errorf("KFor(0) = %d, want MaxK", k)
	}
}

func TestDetermineShapeRespectsBudget(t *testing.T) {
	p1 := &Profile{Ks: []int{1, 10, 100}, Es: []float64{100, 30, 10}, MaxK: 10000}
	p2 := &Profile{Ks: []int{1, 10, 100}, Es: []float64{50, 15, 5}, MaxK: 10000}
	res, err := DetermineShape([]*Profile{p1, p2}, 500)
	if err != nil {
		t.Fatal(err)
	}
	if prod := res.Ks[0] * res.Ks[1]; prod > 500 {
		t.Errorf("shape %v exceeds budget", res.Ks)
	}
	// The noisier dimension should get at least as many points.
	if res.Ks[0] < res.Ks[1] {
		t.Errorf("shape %v gives fewer points to the noisier dim", res.Ks)
	}
}

func TestDetermineShapeSpendsbudget(t *testing.T) {
	p := &Profile{Ks: []int{1, 4, 16}, Es: []float64{8, 4, 2}, MaxK: 1 << 20}
	res, err := DetermineShape([]*Profile{p, p}, 400)
	if err != nil {
		t.Fatal(err)
	}
	prod := res.Ks[0] * res.Ks[1]
	// Greedy filling should land close to the budget (within one bump).
	if prod < 300 {
		t.Errorf("shape %v underspends budget 400", res.Ks)
	}
}

func TestDetermineShape1D(t *testing.T) {
	p := &Profile{Ks: []int{1, 10}, Es: []float64{10, 3}, MaxK: 50}
	res, err := DetermineShape([]*Profile{p}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ks[0] != 20 {
		t.Errorf("1D shape = %v, want all budget", res.Ks)
	}
}

func TestDetermineShapeCapsAtMaxK(t *testing.T) {
	p := &Profile{Ks: []int{1, 4}, Es: []float64{8, 4}, MaxK: 6}
	res, err := DetermineShape([]*Profile{p}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ks[0] != 6 {
		t.Errorf("shape = %v, want capped at MaxK 6", res.Ks)
	}
	if res.Err != 0 {
		t.Errorf("err at MaxK = %v", res.Err)
	}
}

func TestDetermineShapeValidation(t *testing.T) {
	if _, err := DetermineShape(nil, 10); err == nil {
		t.Error("no profiles accepted")
	}
	p := &Profile{Ks: []int{1}, Es: []float64{1}, MaxK: 5}
	if _, err := DetermineShape([]*Profile{p}, 0); err == nil {
		t.Error("zero budget accepted")
	}
}

func TestDetermineShapeOnRealViews(t *testing.T) {
	// Two dimensions with very different variability: the second carries
	// 10x the noise and should receive more partition points.
	r := stats.NewRNG(33)
	n := 1200
	a1 := make([]float64, n)
	a2 := make([]float64, n)
	c := make([]float64, n)
	for i := 0; i < n; i++ {
		c[i] = float64(i + 1)
		a1[i] = 5 + 0.05*float64(i%7) + 0.2*r.NormFloat64()
		a2[i] = 5 + 30*math.Sin(float64(i)/40) + 10*r.NormFloat64()
	}
	v1 := NewViewFromSlices(a1, c, n*10, 0.95)
	v2 := NewViewFromSlices(a2, c, n*10, 0.95)
	cfg := ClimbConfig{Mode: Global, MaxIterations: 10}
	p1, err := BuildProfile(context.Background(), v1, 200, 5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := BuildProfile(context.Background(), v2, 200, 5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DetermineShape([]*Profile{p1, p2}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ks[0]*res.Ks[1] > 100 {
		t.Errorf("budget exceeded: %v", res.Ks)
	}
	if res.Ks[1] < res.Ks[0] {
		t.Errorf("noisy dim got fewer points: %v", res.Ks)
	}
}

func TestAllocateBudget(t *testing.T) {
	// Template 0 decays fast, template 1 slowly: 1 should get more.
	errA := func(b int) float64 { return 10 / math.Sqrt(float64(b)) }
	errB := func(b int) float64 { return 100 / math.Sqrt(float64(b)) }
	alloc, err := AllocateBudget([]func(int) float64{errA, errB}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if alloc[0]+alloc[1] > 1000 {
		t.Errorf("allocation %v exceeds budget", alloc)
	}
	if alloc[1] <= alloc[0] {
		t.Errorf("allocation %v ignores error profiles", alloc)
	}
	// The minimax split solves 10/√a = 100/√b with a+b=1000 → b ≈ 100a.
	if alloc[1] < 900 {
		t.Errorf("allocation %v far from minimax (want b≈990)", alloc)
	}
}

func TestAllocateBudgetEqualTemplates(t *testing.T) {
	f := func(b int) float64 { return 10 / math.Sqrt(float64(b)) }
	alloc, err := AllocateBudget([]func(int) float64{f, f}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if d := alloc[0] - alloc[1]; d < -50 || d > 50 {
		t.Errorf("equal templates got unequal budgets %v", alloc)
	}
}

func TestAllocateBudgetValidation(t *testing.T) {
	if _, err := AllocateBudget(nil, 10); err == nil {
		t.Error("no templates accepted")
	}
	f := func(b int) float64 { return 1 }
	if _, err := AllocateBudget([]func(int) float64{f, f}, 1); err == nil {
		t.Error("budget below template count accepted")
	}
}
