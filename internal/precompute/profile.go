package precompute

import (
	"context"
	"fmt"
	"math"
	"sort"

	"aqppp/internal/stats"
)

// Profile is a dimension's error profile (§6.2, Figure 6): the
// hill-climbed error_up as a function of the per-dimension budget k_i,
// measured at a few anchor budgets and interpolated along the 1/√k decay
// the equal-partition analysis predicts (Lemma 4).
type Profile struct {
	// Ks are the anchor budgets (ascending) and Es the measured errors.
	Ks []int
	Es []float64
	// MaxK is the number of distinct ordinals: at k = MaxK every query
	// aligns exactly and the error is 0.
	MaxK int
}

// BuildProfile measures the profile at up to `anchors` geometrically
// spaced budgets between 1 and maxK (each via equal partition + hill
// climbing on the view) and returns an interpolable profile. The paper
// uses m = 20 anchors by default; small m keeps stage 1 cheap because
// everything runs on the sample.
func BuildProfile(ctx context.Context, v *View, maxK, anchors int, cfg ClimbConfig) (*Profile, error) {
	if maxK < 1 {
		return nil, fmt.Errorf("precompute: maxK = %d", maxK)
	}
	if anchors < 2 {
		anchors = 2
	}
	distinct := distinctCount(v)
	if maxK > distinct {
		maxK = distinct
	}
	ks := anchorBudgets(maxK, anchors)
	p := &Profile{MaxK: distinct}
	for _, k := range ks {
		res, err := Optimize1D(ctx, v, k, cfg)
		if err != nil {
			return nil, err
		}
		p.Ks = append(p.Ks, k)
		p.Es = append(p.Es, res.Trace[len(res.Trace)-1])
	}
	// Enforce monotone non-increasing errors so inversion is well-defined
	// (hill climbing is a heuristic; tiny inversions can occur).
	for i := 1; i < len(p.Es); i++ {
		if p.Es[i] > p.Es[i-1] {
			p.Es[i] = p.Es[i-1]
		}
	}
	return p, nil
}

func distinctCount(v *View) int {
	d := 0
	for i := range v.C {
		if i == 0 || !stats.ExactEqual(v.C[i], v.C[i-1]) {
			d++
		}
	}
	return d
}

// anchorBudgets returns up to `anchors` geometrically spaced budgets from
// 1 to maxK inclusive.
func anchorBudgets(maxK, anchors int) []int {
	if maxK == 1 {
		return []int{1}
	}
	ratio := math.Pow(float64(maxK), 1/float64(anchors-1))
	var ks []int
	cur := 1.0
	for i := 0; i < anchors; i++ {
		k := int(math.Round(cur))
		if k > maxK {
			k = maxK
		}
		if len(ks) == 0 || k > ks[len(ks)-1] {
			ks = append(ks, k)
		}
		cur *= ratio
	}
	if ks[len(ks)-1] != maxK {
		ks = append(ks, maxK)
	}
	return ks
}

// ErrorAt interpolates the profile at budget k. Between anchors the
// interpolation is linear in 1/√k (exact at the anchors); beyond the last
// anchor it extrapolates the 1/√k decay; at or above MaxK it is 0.
func (p *Profile) ErrorAt(k int) float64 {
	if k < 1 {
		k = 1
	}
	if k >= p.MaxK {
		return 0
	}
	ks, es := p.Ks, p.Es
	if k <= ks[0] {
		// Extrapolate below the first anchor along 1/√k.
		return es[0] * math.Sqrt(float64(ks[0])/float64(k))
	}
	last := len(ks) - 1
	if k >= ks[last] {
		return es[last] * math.Sqrt(float64(ks[last])/float64(k))
	}
	i := sort.SearchInts(ks, k)
	if ks[i] == k {
		return es[i]
	}
	// Linear in f(k) = 1/√k between anchors i-1 and i.
	f := func(x int) float64 { return 1 / math.Sqrt(float64(x)) }
	t := (f(k) - f(ks[i-1])) / (f(ks[i]) - f(ks[i-1]))
	return es[i-1] + t*(es[i]-es[i-1])
}

// KFor returns the smallest budget whose interpolated error is at most e,
// capped at MaxK (where the error is exactly 0).
func (p *Profile) KFor(e float64) int {
	if e <= 0 {
		return p.MaxK
	}
	lo, hi := 1, p.MaxK
	for lo < hi {
		mid := (lo + hi) / 2
		if p.ErrorAt(mid) <= e {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
