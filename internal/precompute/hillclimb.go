package precompute

import (
	"context"
	"fmt"
	"math"
)

// AdjustMode selects the hill-climbing adjustment strategy compared in
// Figure 8.
type AdjustMode uint8

const (
	// Global considers every partition point as a removal candidate each
	// iteration (the paper's approach, "Hill Climb (global)").
	Global AdjustMode = iota
	// Local only considers the (up to four) partition points adjacent to
	// the two worst positions i1 and i2 ("Hill Climb (local)"), which
	// converges early to poorer optima.
	Local
)

// String implements fmt.Stringer.
func (m AdjustMode) String() string {
	if m == Local {
		return "local"
	}
	return "global"
}

// ClimbResult reports a hill-climbing run.
type ClimbResult struct {
	// Cuts is the final partition (ascending cut positions, last == n).
	Cuts []int
	// Trace holds error_up(Q, P) before each iteration plus the final
	// value, so Trace[0] is the initial scheme's bound and
	// Trace[len-1] the converged bound (Figure 8's y-axis).
	Trace []float64
	// Iterations is the number of accepted moves.
	Iterations int
}

// ErrorUp returns the paper's upper bound error_up(Q, P) for the given
// cuts: the sum of the two largest error_i over all positions (Lemma 6
// applied at the worst pair of endpoints).
func ErrorUp(v *View, cuts []int) float64 {
	e1, e2, _, _ := worstTwo(v, cuts)
	return e1 + e2
}

// PositionErrors computes error_i for every cut position i in [0, n]:
// the cheaper of estimating the region between i and the next partition
// point, or its complement within the block (§6.1.2(2)), scaled to ε
// units.
//
// Infeasible positions (those splitting duplicate C ordinals) report 0:
// a query endpoint is always a domain value, so it can only land on a
// boundary between distinct ordinals — and a partition point could never
// be placed at an infeasible position anyway.
func PositionErrors(v *View, cuts []int) []float64 {
	n := v.Len()
	errs := make([]float64, n+1)
	scale := v.errScale()
	prev := 0
	ci := 0
	for i := 0; i <= n; i++ {
		for ci < len(cuts) && cuts[ci] < i {
			prev = cuts[ci]
			ci++
		}
		next := n
		if ci < len(cuts) {
			next = cuts[ci]
		}
		if i == prev || i == next || !v.Feasible(i) {
			errs[i] = 0
			continue
		}
		left := v.regionDeviation(prev, i)  // estimate the complement L̄
		right := v.regionDeviation(i, next) // estimate L directly
		errs[i] = scale * math.Min(left, right)
	}
	return errs
}

// worstTwo returns the two largest error_i values and their positions.
func worstTwo(v *View, cuts []int) (e1, e2 float64, i1, i2 int) {
	errs := PositionErrors(v, cuts)
	i1, i2 = -1, -1
	for i, e := range errs {
		if i1 < 0 || e > e1 {
			e2, i2 = e1, i1
			e1, i1 = e, i
		} else if i2 < 0 || e > e2 {
			e2, i2 = e, i
		}
	}
	return e1, e2, i1, i2
}

// ClimbConfig bounds a hill-climbing run.
type ClimbConfig struct {
	// Mode selects Global or Local adjustment.
	Mode AdjustMode
	// MaxIterations caps accepted moves (default 200).
	MaxIterations int
}

// HillClimb refines an initial partition by repeatedly moving one cut:
// the removal candidate whose merged block's worst error_i is smallest is
// moved to (the feasible snap of) i1 or i2, whichever yields the lower
// error_up; the move is kept only if error_up strictly decreases
// (§6.1.2(3)-(4)). The final cut at position n is never moved (footnote
// 5: the full prefix is always kept).
//
// ctx is checked once per climb step, so a canceled Prepare unwinds
// within one iteration and returns ctx's error.
func HillClimb(ctx context.Context, v *View, initial []int, cfg ClimbConfig) (ClimbResult, error) {
	n := v.Len()
	if len(initial) == 0 || initial[len(initial)-1] != n {
		return ClimbResult{}, fmt.Errorf("precompute: initial cuts must end at n=%d", n)
	}
	maxIters := cfg.MaxIterations
	if maxIters <= 0 {
		maxIters = 200
	}
	cuts := append([]int(nil), initial...)
	cur := ErrorUp(v, cuts)
	res := ClimbResult{Trace: []float64{cur}}
	const eps = 1e-12

	for iter := 0; iter < maxIters; iter++ {
		if err := ctx.Err(); err != nil {
			return ClimbResult{}, err
		}
		_, _, i1, i2 := worstTwo(v, cuts)
		removable := removalCandidates(v, cuts, i1, i2, cfg.Mode)
		if len(removable) == 0 {
			break
		}
		// Pick the cut whose removal least increases the local error.
		bestJ := -1
		bestCost := math.Inf(1)
		for _, j := range removable {
			cost := removalCost(v, cuts, j)
			if cost < bestCost {
				bestCost = cost
				bestJ = j
			}
		}
		if bestJ < 0 {
			break
		}
		improved := false
		bestNew := cur
		var bestCuts []int
		for _, target := range []int{i1, i2} {
			t := v.SnapFeasible(target)
			if t <= 0 || t >= n || containsInt(cuts, t) {
				continue
			}
			trial := moveCut(cuts, bestJ, t)
			e := ErrorUp(v, trial)
			if e < bestNew-eps {
				bestNew = e
				bestCuts = trial
				improved = true
			}
		}
		if !improved {
			break
		}
		cuts = bestCuts
		cur = bestNew
		res.Iterations++
		res.Trace = append(res.Trace, cur)
	}
	res.Cuts = cuts
	return res, nil
}

// removalCandidates lists indices (into cuts) eligible for removal. The
// final cut is excluded. Local mode keeps only cuts bounding the blocks
// of i1 and i2.
func removalCandidates(v *View, cuts []int, i1, i2 int, mode AdjustMode) []int {
	last := len(cuts) - 1
	if mode == Global {
		out := make([]int, 0, last)
		for j := 0; j < last; j++ {
			out = append(out, j)
		}
		return out
	}
	// At most four candidates (two bounding cuts per position); a sorted
	// slice with dedup keeps the order deterministic.
	var want []int
	for _, pos := range []int{i1, i2} {
		lo, hi := blockCutIndices(cuts, pos)
		if lo >= 0 && lo < last {
			want = append(want, lo)
		}
		if hi >= 0 && hi < last {
			want = append(want, hi)
		}
	}
	sortInts(want)
	out := want[:0]
	for i, j := range want {
		if i == 0 || j != want[i-1] {
			out = append(out, j)
		}
	}
	return out
}

// blockCutIndices returns the indices (into cuts) of the cuts bounding the
// block containing position pos: the largest cut < pos and the smallest
// cut >= pos. Either may be -1 when pos lies before the first cut.
func blockCutIndices(cuts []int, pos int) (lo, hi int) {
	lo, hi = -1, -1
	for j, c := range cuts {
		if c < pos {
			lo = j
		} else {
			hi = j
			break
		}
	}
	return lo, hi
}

// removalCost is the maximum error_i within the merged block after
// removing cuts[j] (the paper's "maximum error among the changed points").
func removalCost(v *View, cuts []int, j int) float64 {
	prev := 0
	if j > 0 {
		prev = cuts[j-1]
	}
	next := v.Len()
	if j+1 < len(cuts) {
		next = cuts[j+1]
	}
	scale := v.errScale()
	worst := 0.0
	for i := prev + 1; i < next; i++ {
		if !v.Feasible(i) {
			continue
		}
		left := v.regionDeviation(prev, i)
		right := v.regionDeviation(i, next)
		if e := scale * math.Min(left, right); e > worst {
			worst = e
		}
	}
	return worst
}

// moveCut returns a copy of cuts with index j removed and position t
// inserted, kept sorted.
func moveCut(cuts []int, j, t int) []int {
	out := make([]int, 0, len(cuts))
	for i, c := range cuts {
		if i != j {
			out = append(out, c)
		}
	}
	out = append(out, t)
	sortInts(out)
	return out
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// Optimize1D runs the full 1-D pipeline: equal-partition initialization
// (feasibility-snapped) followed by hill climbing.
func Optimize1D(ctx context.Context, v *View, k int, cfg ClimbConfig) (ClimbResult, error) {
	init, err := EqualPartition(v, k)
	if err != nil {
		return ClimbResult{}, err
	}
	return HillClimb(ctx, v, init, cfg)
}
