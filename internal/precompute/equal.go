package precompute

import "fmt"

// EqualPartition returns k feasible cut positions approximating the
// equal-partition scheme P_eq (Theorem 1): cuts at round(j·n/k) for
// j = 1..k, each snapped to the nearest feasible position when the
// condition attribute has duplicate values (Figure 4a). The last cut is
// always n (footnote 5: the full-domain prefix is always precomputed).
//
// Fewer than k cuts may be returned when the attribute has fewer distinct
// values than k.
func EqualPartition(v *View, k int) ([]int, error) {
	n := v.Len()
	if k < 1 {
		return nil, fmt.Errorf("precompute: k = %d < 1", k)
	}
	if n == 0 {
		return nil, fmt.Errorf("precompute: empty view")
	}
	used := make(map[int]bool)
	var cuts []int
	for j := 1; j <= k; j++ {
		want := j * n / k
		if j == k {
			want = n
		}
		c := want
		if c != n {
			c = v.SnapFeasible(want)
			if c < 0 {
				continue
			}
		}
		if !used[c] {
			used[c] = true
			cuts = append(cuts, c)
		}
	}
	if !used[n] {
		cuts = append(cuts, n)
	}
	sortInts(cuts)
	return cuts, nil
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
