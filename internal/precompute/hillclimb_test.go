package precompute

import (
	"context"
	"math"
	"testing"

	"aqppp/internal/stats"
)

// iidView builds a view with i.i.d. values and distinct C (Theorem 1's
// assumptions).
func iidView(n int, seed uint64) *View {
	r := stats.NewRNG(seed)
	a := make([]float64, n)
	c := make([]float64, n)
	for i := range a {
		a[i] = 10 + 3*r.NormFloat64()
		c[i] = float64(i + 1)
	}
	return NewViewFromSlices(a, c, n*20, 0.95)
}

// correlatedView builds the Figure 4(b) setting: the first half of A is
// constant, the second half has large variance.
func correlatedView(n int, seed uint64) *View {
	r := stats.NewRNG(seed)
	a := make([]float64, n)
	c := make([]float64, n)
	for i := range a {
		c[i] = float64(i + 1)
		if i < n/2 {
			a[i] = 0
		} else {
			a[i] = 100 * r.NormFloat64()
		}
	}
	return NewViewFromSlices(a, c, n*20, 0.95)
}

func TestEqualPartitionBasic(t *testing.T) {
	v := iidView(100, 1)
	cuts, err := EqualPartition(v, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{25, 50, 75, 100}
	if len(cuts) != 4 {
		t.Fatalf("cuts = %v", cuts)
	}
	for i := range want {
		if cuts[i] != want[i] {
			t.Errorf("cut %d = %d, want %d", i, cuts[i], want[i])
		}
	}
}

func TestEqualPartitionSnapsDuplicates(t *testing.T) {
	// Figure 4(a): C has heavy duplication so the midpoint is infeasible.
	a := []float64{1, 2, 3, 4, 5, 6, 7}
	c := []float64{1, 1, 1, 1, 1, 2, 3}
	v := NewViewFromSlices(a, c, 7, 0.95)
	cuts, err := EqualPartition(v, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range cuts {
		if !v.Feasible(cut) {
			t.Errorf("infeasible cut %d", cut)
		}
	}
	if cuts[len(cuts)-1] != 7 {
		t.Error("last cut not at n")
	}
}

func TestEqualPartitionFewDistinct(t *testing.T) {
	v := NewViewFromSlices(
		[]float64{1, 2, 3, 4},
		[]float64{1, 1, 2, 2},
		4, 0.95)
	cuts, err := EqualPartition(v, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(cuts) > 2 {
		t.Errorf("more cuts than distinct values: %v", cuts)
	}
}

func TestEqualPartitionValidation(t *testing.T) {
	v := iidView(10, 2)
	if _, err := EqualPartition(v, 0); err == nil {
		t.Error("k=0 accepted")
	}
	empty := NewViewFromSlices(nil, nil, 0, 0.95)
	if _, err := EqualPartition(empty, 2); err == nil {
		t.Error("empty view accepted")
	}
}

func TestPositionErrorsZeroAtCuts(t *testing.T) {
	v := iidView(60, 3)
	cuts := []int{20, 40, 60}
	errs := PositionErrors(v, cuts)
	if len(errs) != 61 {
		t.Fatalf("len = %d", len(errs))
	}
	for _, c := range append([]int{0}, cuts...) {
		if errs[c] != 0 {
			t.Errorf("error at cut %d = %v, want 0", c, errs[c])
		}
	}
	// Mid-block positions must carry positive error.
	if errs[10] <= 0 || errs[30] <= 0 {
		t.Error("mid-block error not positive")
	}
}

func TestPositionErrorsInfeasibleZero(t *testing.T) {
	v := NewViewFromSlices(
		[]float64{5, 6, 7, 8},
		[]float64{1, 1, 2, 2},
		4, 0.95)
	errs := PositionErrors(v, []int{2, 4})
	if errs[1] != 0 || errs[3] != 0 {
		t.Errorf("infeasible positions carry error: %v", errs)
	}
}

func TestErrorUpDecreasesWithK(t *testing.T) {
	v := iidView(500, 4)
	var prev float64
	for i, k := range []int{2, 5, 10, 25, 50} {
		cuts, err := EqualPartition(v, k)
		if err != nil {
			t.Fatal(err)
		}
		e := ErrorUp(v, cuts)
		if i > 0 && e > prev*1.05 {
			t.Errorf("error_up rose from %v to %v at k=%d", prev, e, k)
		}
		prev = e
	}
}

func TestErrorUpMatchesLemma4Scaling(t *testing.T) {
	// Under the i.i.d. assumptions, error(Q, P_eq) = λN sqrt(σ_eq²/n) with
	// σ_eq² = E[D²]/k − (E[D])²/k². error_up sums the two worst endpoint
	// errors, each ≈ λN/√n · sd of half a block, so the k-scaling is the
	// interesting part: doubling k should shrink error_up by ~√2.
	v := iidView(2000, 5)
	cuts1, _ := EqualPartition(v, 10)
	cuts2, _ := EqualPartition(v, 40)
	e1 := ErrorUp(v, cuts1)
	e2 := ErrorUp(v, cuts2)
	ratio := e1 / e2
	if ratio < 1.5 || ratio > 2.8 {
		t.Errorf("error_up(k=10)/error_up(k=40) = %v, want ≈ 2", ratio)
	}
}

func TestHillClimbNeverWorsens(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		v := correlatedView(400, seed)
		init, err := EqualPartition(v, 8)
		if err != nil {
			t.Fatal(err)
		}
		res, err := HillClimb(context.Background(), v, init, ClimbConfig{Mode: Global})
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(res.Trace); i++ {
			if res.Trace[i] > res.Trace[i-1] {
				t.Fatalf("seed %d: trace increased at %d: %v", seed, i, res.Trace)
			}
		}
		if res.Cuts[len(res.Cuts)-1] != v.Len() {
			t.Error("final cut moved away from n")
		}
		if len(res.Cuts) != len(init) {
			t.Errorf("cut count changed: %d -> %d", len(init), len(res.Cuts))
		}
	}
}

func TestHillClimbImprovesOnCorrelatedData(t *testing.T) {
	// Figure 4(b): half the data is constant; the equal partition wastes
	// points there. Hill climbing should strictly beat it.
	v := correlatedView(800, 11)
	init, _ := EqualPartition(v, 8)
	initErr := ErrorUp(v, init)
	res, err := HillClimb(context.Background(), v, init, ClimbConfig{Mode: Global})
	if err != nil {
		t.Fatal(err)
	}
	finalErr := res.Trace[len(res.Trace)-1]
	if finalErr >= initErr*0.95 {
		t.Errorf("hill climbing barely improved: %v -> %v", initErr, finalErr)
	}
	// More cuts should land in the high-variance second half.
	secondHalf := 0
	for _, c := range res.Cuts {
		if c > v.Len()/2 {
			secondHalf++
		}
	}
	if secondHalf <= len(res.Cuts)/2 {
		t.Errorf("cuts %v not concentrated in the noisy half", res.Cuts)
	}
}

func TestGlobalBeatsLocal(t *testing.T) {
	// Figure 8's claim: local adjustment converges early to a worse bound.
	var globalWins int
	for seed := uint64(0); seed < 5; seed++ {
		v := correlatedView(600, 100+seed)
		init, _ := EqualPartition(v, 10)
		g, err := HillClimb(context.Background(), v, init, ClimbConfig{Mode: Global})
		if err != nil {
			t.Fatal(err)
		}
		l, err := HillClimb(context.Background(), v, init, ClimbConfig{Mode: Local})
		if err != nil {
			t.Fatal(err)
		}
		ge := g.Trace[len(g.Trace)-1]
		le := l.Trace[len(l.Trace)-1]
		if ge <= le+1e-9 {
			globalWins++
		}
	}
	if globalWins < 4 {
		t.Errorf("global beat local in only %d/5 runs", globalWins)
	}
}

func TestHillClimbValidation(t *testing.T) {
	v := iidView(50, 12)
	if _, err := HillClimb(context.Background(), v, []int{10, 20}, ClimbConfig{}); err == nil {
		t.Error("cuts not ending at n accepted")
	}
	if _, err := HillClimb(context.Background(), v, nil, ClimbConfig{}); err == nil {
		t.Error("empty cuts accepted")
	}
}

func TestHillClimbIterationCap(t *testing.T) {
	v := correlatedView(400, 13)
	init, _ := EqualPartition(v, 8)
	res, err := HillClimb(context.Background(), v, init, ClimbConfig{Mode: Global, MaxIterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 2 {
		t.Errorf("iterations = %d, cap was 2", res.Iterations)
	}
}

func TestOptimize1DOnNearOptimalStaysPut(t *testing.T) {
	// On i.i.d. data the equal partition is optimal (Theorem 1); hill
	// climbing may shuffle a little but must not end up meaningfully
	// worse.
	v := iidView(1000, 14)
	init, _ := EqualPartition(v, 10)
	initErr := ErrorUp(v, init)
	res, err := Optimize1D(context.Background(), v, 10, ClimbConfig{Mode: Global})
	if err != nil {
		t.Fatal(err)
	}
	if final := res.Trace[len(res.Trace)-1]; final > initErr+1e-9 {
		t.Errorf("optimizer worsened the equal partition: %v -> %v", initErr, final)
	}
}

func TestAdjustModeString(t *testing.T) {
	if Global.String() != "global" || Local.String() != "local" {
		t.Error("AdjustMode.String wrong")
	}
}

func TestErrorUpNonNegative(t *testing.T) {
	v := iidView(100, 15)
	cuts, _ := EqualPartition(v, 5)
	if e := ErrorUp(v, cuts); e < 0 || math.IsNaN(e) {
		t.Errorf("error_up = %v", e)
	}
}

func TestMoreCutsNeverIncreaseErrorUp(t *testing.T) {
	// Refining a partition cannot make the worst endpoint pair worse:
	// every block only shrinks.
	r := stats.NewRNG(77)
	for trial := 0; trial < 20; trial++ {
		v := iidView(300, uint64(trial))
		k := r.Intn(6) + 2
		cuts, err := EqualPartition(v, k)
		if err != nil {
			t.Fatal(err)
		}
		before := ErrorUp(v, cuts)
		// Insert one extra feasible cut at a random free position.
		pos := v.SnapFeasible(r.Intn(v.Len()-2) + 1)
		if pos <= 0 || containsInt(cuts, pos) {
			continue
		}
		refined := append([]int(nil), cuts...)
		refined = append(refined, pos)
		sortInts(refined)
		after := ErrorUp(v, refined)
		if after > before+1e-9 {
			t.Fatalf("trial %d: error_up rose from %v to %v after refining", trial, before, after)
		}
	}
}

func TestPositionErrorsLengthInvariant(t *testing.T) {
	v := iidView(123, 9)
	cuts, _ := EqualPartition(v, 5)
	if got := len(PositionErrors(v, cuts)); got != 124 {
		t.Errorf("len = %d, want n+1", got)
	}
}
