package precompute

import (
	"context"
	"testing"
)

// BenchmarkPositionErrors measures the O(n) error_i sweep.
func BenchmarkPositionErrors(b *testing.B) {
	v := iidView(5000, 1)
	cuts, err := EqualPartition(v, 50)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = PositionErrors(v, cuts)
	}
}

// BenchmarkHillClimbGlobal measures a full global climb on correlated
// data.
func BenchmarkHillClimbGlobal(b *testing.B) {
	v := correlatedView(2000, 2)
	init, err := EqualPartition(v, 20)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := HillClimb(context.Background(), v, init, ClimbConfig{Mode: Global, MaxIterations: 30}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildProfile measures the stage-1 profile construction.
func BenchmarkBuildProfile(b *testing.B) {
	v := iidView(2000, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildProfile(context.Background(), v, 200, 6, ClimbConfig{Mode: Global, MaxIterations: 15}); err != nil {
			b.Fatal(err)
		}
	}
}
