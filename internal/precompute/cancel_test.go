package precompute

import (
	"context"
	"errors"
	"testing"
)

// TestCancelHillClimb: a pre-canceled context unwinds the climber, the
// 1-D optimizer and the profile builder with context.Canceled before
// any iteration runs.
func TestCancelHillClimb(t *testing.T) {
	v := iidView(2000, 3)
	init, err := EqualPartition(v, 10)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := HillClimb(ctx, v, init, ClimbConfig{Mode: Global}); !errors.Is(err, context.Canceled) {
		t.Errorf("HillClimb err = %v, want context.Canceled", err)
	}
	if _, err := Optimize1D(ctx, v, 10, ClimbConfig{Mode: Global}); !errors.Is(err, context.Canceled) {
		t.Errorf("Optimize1D err = %v, want context.Canceled", err)
	}
	if _, err := BuildProfile(ctx, v, 100, 4, ClimbConfig{Mode: Global}); !errors.Is(err, context.Canceled) {
		t.Errorf("BuildProfile err = %v, want context.Canceled", err)
	}
}
