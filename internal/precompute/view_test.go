package precompute

import (
	"math"
	"testing"

	"aqppp/internal/engine"
	"aqppp/internal/sample"
	"aqppp/internal/stats"
)

func uniformSampleOf(t *testing.T, tbl *engine.Table, rate float64, seed uint64) *sample.Sample {
	t.Helper()
	s, err := sample.NewUniform(tbl, rate, seed)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewViewSortedByCondition(t *testing.T) {
	tbl := engine.MustNewTable("t",
		engine.NewIntColumn("c", []int64{5, 1, 3, 2, 4}),
		engine.NewFloatColumn("a", []float64{50, 10, 30, 20, 40}),
	)
	s := uniformSampleOf(t, tbl, 1.0, 1)
	v, err := NewView(s, "a", "c", 0.95)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < v.Len(); i++ {
		if v.C[i-1] > v.C[i] {
			t.Fatalf("C not sorted at %d", i)
		}
	}
	// A follows C's order: c=1→a=10, ..., c=5→a=50.
	for i := 0; i < v.Len(); i++ {
		if v.A[i] != v.C[i]*10 {
			t.Errorf("A[%d] = %v for C = %v", i, v.A[i], v.C[i])
		}
	}
	if v.N != 5 {
		t.Errorf("N = %d", v.N)
	}
	if math.Abs(v.Lambda-1.96) > 0.01 {
		t.Errorf("Lambda = %v", v.Lambda)
	}
}

func TestNewViewCountTemplate(t *testing.T) {
	tbl := engine.MustNewTable("t", engine.NewIntColumn("c", []int64{3, 1, 2}))
	s := uniformSampleOf(t, tbl, 1.0, 2)
	v, err := NewView(s, "", "c", 0.95)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < v.Len(); i++ {
		if v.A[i] != 1 {
			t.Errorf("COUNT view A[%d] = %v", i, v.A[i])
		}
	}
}

func TestNewViewErrors(t *testing.T) {
	tbl := engine.MustNewTable("t", engine.NewIntColumn("c", []int64{1}))
	s := uniformSampleOf(t, tbl, 1.0, 3)
	if _, err := NewView(s, "nope", "c", 0.95); err == nil {
		t.Error("missing agg column accepted")
	}
	if _, err := NewView(s, "", "nope", 0.95); err == nil {
		t.Error("missing cond column accepted")
	}
}

func TestRegionDeviationMatchesDirect(t *testing.T) {
	r := stats.NewRNG(7)
	a := make([]float64, 200)
	c := make([]float64, 200)
	for i := range a {
		a[i] = r.NormFloat64() * 10
		c[i] = float64(i)
	}
	v := NewViewFromSlices(a, c, 200, 0.95)
	for _, seg := range [][2]int{{0, 200}, {10, 50}, {0, 1}, {199, 200}, {50, 50}} {
		lo, hi := seg[0], seg[1]
		masked := make([]float64, 200)
		for i := lo; i < hi; i++ {
			masked[i] = v.A[i]
		}
		want := math.Sqrt(stats.Variance(masked))
		if got := v.regionDeviation(lo, hi); math.Abs(got-want) > 1e-9 {
			t.Errorf("regionDeviation(%d,%d) = %v, want %v", lo, hi, got, want)
		}
	}
}

func TestFeasibleAndSnap(t *testing.T) {
	// C = [1,1,1,2,2,3]: feasible interior cuts are 3 and 5.
	v := NewViewFromSlices(
		[]float64{1, 2, 3, 4, 5, 6},
		[]float64{1, 1, 1, 2, 2, 3},
		6, 0.95)
	wantFeasible := map[int]bool{0: true, 3: true, 5: true, 6: true}
	for i := 0; i <= 6; i++ {
		if got := v.Feasible(i); got != wantFeasible[i] {
			t.Errorf("Feasible(%d) = %v", i, got)
		}
	}
	if got := v.SnapFeasible(4); got != 3 && got != 5 {
		t.Errorf("SnapFeasible(4) = %d", got)
	}
	if got := v.SnapFeasible(1); got != 3 {
		t.Errorf("SnapFeasible(1) = %d, want 3", got)
	}
	// Figure 4(a): middle cut snaps to nearest feasible boundary.
	if got := v.SnapFeasible(3); got != 3 {
		t.Errorf("SnapFeasible(3) = %d, want itself", got)
	}
}

func TestSnapFeasibleAllDuplicates(t *testing.T) {
	v := NewViewFromSlices([]float64{1, 2, 3}, []float64{7, 7, 7}, 3, 0.95)
	if got := v.SnapFeasible(1); got != -1 {
		t.Errorf("SnapFeasible on constant C = %d, want -1", got)
	}
}

func TestCutsToPoints(t *testing.T) {
	v := NewViewFromSlices(
		[]float64{1, 2, 3, 4, 5, 6},
		[]float64{1, 1, 2, 2, 3, 3},
		6, 0.95)
	pts, err := v.CutsToPoints([]int{2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i := range want {
		if pts[i] != want[i] {
			t.Errorf("point %d = %v, want %v", i, pts[i], want[i])
		}
	}
	if _, err := v.CutsToPoints([]int{1, 6}); err == nil {
		t.Error("infeasible cut accepted")
	}
	if _, err := v.CutsToPoints([]int{0, 6}); err == nil {
		t.Error("zero cut accepted")
	}
	if _, err := v.CutsToPoints([]int{7}); err == nil {
		t.Error("out-of-range cut accepted")
	}
}

func TestNewViewFromSlicesSorts(t *testing.T) {
	v := NewViewFromSlices([]float64{30, 10, 20}, []float64{3, 1, 2}, 3, 0.95)
	if v.C[0] != 1 || v.A[0] != 10 || v.C[2] != 3 || v.A[2] != 30 {
		t.Errorf("view not sorted: C=%v A=%v", v.C, v.A)
	}
}

func TestNewViewFromSlicesPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	NewViewFromSlices([]float64{1}, []float64{1, 2}, 2, 0.95)
}
