package stats

import (
	"math"
	"testing"
)

func TestZScoreKnownValues(t *testing.T) {
	// The paper's Example 1: λ = 1.96 for 95%, λ = 2.576 for 99%.
	cases := []struct {
		conf float64
		want float64
		tol  float64
	}{
		{0.95, 1.959964, 1e-4},
		{0.99, 2.575829, 1e-4},
		{0.90, 1.644854, 1e-4},
		{0.50, 0.674490, 1e-4},
	}
	for _, c := range cases {
		if got := ZScore(c.conf); math.Abs(got-c.want) > c.tol {
			t.Errorf("ZScore(%v) = %v, want %v", c.conf, got, c.want)
		}
	}
}

func TestZScorePanics(t *testing.T) {
	for _, bad := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ZScore(%v) did not panic", bad)
				}
			}()
			ZScore(bad)
		}()
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	for p := 0.001; p < 1; p += 0.013 {
		x := NormalQuantile(p)
		back := NormalCDF(x)
		if math.Abs(back-p) > 1e-10 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, back)
		}
	}
}

func TestNormalQuantileSymmetry(t *testing.T) {
	for p := 0.01; p < 0.5; p += 0.017 {
		if got := NormalQuantile(p) + NormalQuantile(1-p); math.Abs(got) > 1e-10 {
			t.Errorf("quantile asymmetric at p=%v: %v", p, got)
		}
	}
}

func TestNormalQuantileExtremes(t *testing.T) {
	if !math.IsInf(NormalQuantile(0), -1) {
		t.Error("Quantile(0) should be -Inf")
	}
	if !math.IsInf(NormalQuantile(1), 1) {
		t.Error("Quantile(1) should be +Inf")
	}
	if NormalQuantile(0.5) != 0 && math.Abs(NormalQuantile(0.5)) > 1e-12 {
		t.Errorf("Quantile(0.5) = %v, want 0", NormalQuantile(0.5))
	}
}

func TestNormalCDFKnown(t *testing.T) {
	if got := NormalCDF(0); math.Abs(got-0.5) > 1e-15 {
		t.Errorf("CDF(0) = %v", got)
	}
	if got := NormalCDF(1.959964); math.Abs(got-0.975) > 1e-6 {
		t.Errorf("CDF(1.96) = %v, want 0.975", got)
	}
}
