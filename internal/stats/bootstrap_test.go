package stats

import (
	"testing"
)

func TestBootstrapCoversTruth(t *testing.T) {
	// The 95% bootstrap interval for the mean of a normal sample should
	// contain the true mean most of the time.
	r := NewRNG(2024)
	covered := 0
	const trials = 60
	for trial := 0; trial < trials; trial++ {
		xs := make([]float64, 300)
		for i := range xs {
			xs[i] = r.NormFloat64() + 5
		}
		b := &Bootstrap{Resamples: 200, RNG: r.Split()}
		lo, hi := b.Interval(xs, 0.95, Mean)
		if lo <= 5 && 5 <= hi {
			covered++
		}
		if lo > hi {
			t.Fatalf("inverted interval [%v, %v]", lo, hi)
		}
	}
	if covered < trials*80/100 {
		t.Errorf("bootstrap covered truth in only %d/%d trials", covered, trials)
	}
}

func TestBootstrapDegenerateSample(t *testing.T) {
	xs := []float64{7, 7, 7, 7}
	b := &Bootstrap{}
	lo, hi := b.Interval(xs, 0.95, Mean)
	if lo != 7 || hi != 7 {
		t.Errorf("constant sample interval = [%v, %v], want [7, 7]", lo, hi)
	}
}

func TestBootstrapReplicateCount(t *testing.T) {
	b := &Bootstrap{Resamples: 37}
	reps := b.Replicates([]float64{1, 2, 3}, Mean)
	if len(reps) != 37 {
		t.Errorf("got %d replicates, want 37", len(reps))
	}
	bDefault := &Bootstrap{}
	reps = bDefault.Replicates([]float64{1, 2, 3}, Mean)
	if len(reps) != defaultResamples {
		t.Errorf("default replicate count = %d", len(reps))
	}
}

func TestBootstrapDeterministicWithSeed(t *testing.T) {
	xs := []float64{1, 5, 2, 8, 3}
	b1 := &Bootstrap{Resamples: 50, RNG: NewRNG(1)}
	b2 := &Bootstrap{Resamples: 50, RNG: NewRNG(1)}
	r1 := b1.Replicates(xs, Mean)
	r2 := b2.Replicates(xs, Mean)
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("replicates diverged at %d", i)
		}
	}
}
