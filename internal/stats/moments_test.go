package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	d := math.Abs(a - b)
	if d <= tol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return d <= tol*scale
}

func TestMeanVarianceHandComputed(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := Variance(xs); got != 4 {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := SampleVariance(xs); !almostEq(got, 32.0/7, 1e-12) {
		t.Errorf("SampleVariance = %v, want 32/7", got)
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || Sum(nil) != 0 {
		t.Error("empty slice should give zeros")
	}
	if Variance([]float64{3}) != 0 {
		t.Error("singleton variance should be 0")
	}
	if SampleVariance([]float64{3}) != 0 {
		t.Error("singleton sample variance should be 0")
	}
	if Median(nil) != 0 {
		t.Error("empty median should be 0")
	}
}

func TestCovarianceCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Correlation(xs, ys); !almostEq(got, 1, 1e-12) {
		t.Errorf("perfect positive correlation = %v, want 1", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Correlation(xs, neg); !almostEq(got, -1, 1e-12) {
		t.Errorf("perfect negative correlation = %v, want -1", got)
	}
	if got := Covariance(xs, ys); !almostEq(got, 4, 1e-12) {
		t.Errorf("Covariance = %v, want 4", got)
	}
	flat := []float64{5, 5, 5, 5, 5}
	if got := Correlation(xs, flat); got != 0 {
		t.Errorf("correlation with constant = %v, want 0", got)
	}
}

func TestCovarianceMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	Covariance([]float64{1}, []float64{1, 2})
}

func TestMomentsMatchesBatch(t *testing.T) {
	r := NewRNG(77)
	xs := make([]float64, 5000)
	var m Moments
	for i := range xs {
		xs[i] = r.NormFloat64()*3 + 10
		m.Add(xs[i])
	}
	if !almostEq(m.Mean(), Mean(xs), 1e-9) {
		t.Errorf("streaming mean %v != batch %v", m.Mean(), Mean(xs))
	}
	if !almostEq(m.Variance(), Variance(xs), 1e-9) {
		t.Errorf("streaming variance %v != batch %v", m.Variance(), Variance(xs))
	}
	if m.Count() != 5000 {
		t.Errorf("count = %d", m.Count())
	}
}

func TestMomentsMergeEqualsSequential(t *testing.T) {
	f := func(seed uint32, split uint8) bool {
		r := NewRNG(uint64(seed))
		n := 100
		k := int(split)%n + 1
		var whole, a, b Moments
		for i := 0; i < n; i++ {
			x := r.NormFloat64()
			whole.Add(x)
			if i < k {
				a.Add(x)
			} else {
				b.Add(x)
			}
		}
		a.Merge(&b)
		return almostEq(a.Mean(), whole.Mean(), 1e-9) &&
			almostEq(a.Variance(), whole.Variance(), 1e-9) &&
			a.Count() == whole.Count() &&
			a.Min() == whole.Min() && a.Max() == whole.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMedianQuantile(t *testing.T) {
	xs := []float64{9, 1, 8, 2, 7, 3}
	if got := Median(xs); got != 5 {
		t.Errorf("Median = %v, want 5", got)
	}
	// xs must not be mutated.
	if xs[0] != 9 {
		t.Error("Median mutated its input")
	}
	odd := []float64{5, 1, 3}
	if got := Median(odd); got != 3 {
		t.Errorf("odd Median = %v, want 3", got)
	}
	if got := Quantile(odd, 0); got != 1 {
		t.Errorf("Quantile(0) = %v, want 1", got)
	}
	if got := Quantile(odd, 1); got != 5 {
		t.Errorf("Quantile(1) = %v, want 5", got)
	}
}

func TestQuantileSortedProperty(t *testing.T) {
	r := NewRNG(13)
	f := func(qRaw uint16) bool {
		q := float64(qRaw) / math.MaxUint16
		xs := make([]float64, 37)
		for i := range xs {
			xs[i] = r.Float64() * 100
		}
		v := Quantile(xs, q)
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		return v >= lo && v <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSortFloat64s(t *testing.T) {
	r := NewRNG(21)
	for trial := 0; trial < 50; trial++ {
		n := r.Intn(500) + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = math.Floor(r.Float64() * 50)
		}
		sortFloat64s(xs)
		for i := 1; i < n; i++ {
			if xs[i-1] > xs[i] {
				t.Fatalf("unsorted at %d (trial %d)", i, trial)
			}
		}
	}
}
