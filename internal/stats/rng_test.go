package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical draws", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	var m Moments
	for i := 0; i < 100000; i++ {
		m.Add(r.Float64())
	}
	if got := m.Mean(); math.Abs(got-0.5) > 0.01 {
		t.Errorf("uniform mean = %v, want ~0.5", got)
	}
	if got := m.Variance(); math.Abs(got-1.0/12) > 0.01 {
		t.Errorf("uniform variance = %v, want ~1/12", got)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(3)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("Intn(7) hit %d/7 values in 10k draws", len(seen))
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGNormFloat64(t *testing.T) {
	r := NewRNG(5)
	var m Moments
	for i := 0; i < 200000; i++ {
		m.Add(r.NormFloat64())
	}
	if got := m.Mean(); math.Abs(got) > 0.01 {
		t.Errorf("normal mean = %v, want ~0", got)
	}
	if got := m.Variance(); math.Abs(got-1) > 0.02 {
		t.Errorf("normal variance = %v, want ~1", got)
	}
}

func TestRNGExpFloat64(t *testing.T) {
	r := NewRNG(5)
	var m Moments
	for i := 0; i < 200000; i++ {
		m.Add(r.ExpFloat64())
	}
	if got := m.Mean(); math.Abs(got-1) > 0.02 {
		t.Errorf("exponential mean = %v, want ~1", got)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(9)
	f := func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(123)
	c1 := r.Split()
	c2 := r.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("split children produced %d/100 identical draws", same)
	}
}
