package stats

// Bootstrap draws resamples of xs (with replacement, each of the original
// size), applies estimate to each, and returns the resample statistics. It
// is the empirical-confidence-interval machinery of §4.1/§4.2.2 of the
// paper, used when a closed-form interval is unavailable (e.g. VAR or
// UDF-style aggregates).
type Bootstrap struct {
	// Resamples is the number of bootstrap replicates m (default 200).
	Resamples int
	// RNG drives resampling; a nil RNG uses a fixed seed so results are
	// reproducible.
	RNG *RNG
}

// defaultResamples matches common AQP practice; the analytical-bootstrap
// literature the paper cites [72] shows little benefit beyond a few
// hundred replicates for CI estimation.
const defaultResamples = 200

// Interval returns a percentile bootstrap confidence interval for the
// statistic estimate computed on xs, at the given confidence level in
// (0, 1). The returned pair is (low, high).
func (b *Bootstrap) Interval(xs []float64, confidence float64, estimate func([]float64) float64) (float64, float64) {
	stats := b.Replicates(xs, estimate)
	alpha := (1 - confidence) / 2
	return Quantile(stats, alpha), Quantile(stats, 1-alpha)
}

// Replicates returns the raw replicate statistics, one per resample.
func (b *Bootstrap) Replicates(xs []float64, estimate func([]float64) float64) []float64 {
	m := b.Resamples
	if m <= 0 {
		m = defaultResamples
	}
	r := b.RNG
	if r == nil {
		r = NewRNG(0x5eed)
	}
	n := len(xs)
	out := make([]float64, m)
	buf := make([]float64, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			buf[j] = xs[r.Intn(n)]
		}
		out[i] = estimate(buf)
	}
	return out
}
