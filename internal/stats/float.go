package stats

import "math"

// ExactEqual reports whether a and b are the identical float64 bit
// pattern under ==. It exists so that deliberate exact comparisons have
// one named, auditable home: the float-eq lint rule bans bare ==/!= on
// floats, and this file carries the single allowlist entry. Use it only
// when both operands are *stored* values copied from the same source
// (sorted column ordinals, partition points, dictionary ranks) — never
// for values recomputed through arithmetic, where reassociation moves
// the last ulp and a tolerance (ApproxEqual) is required instead.
func ExactEqual(a, b float64) bool { return a == b }

// ApproxEqual reports whether a and b agree to within tol, measured
// relative to the larger magnitude (and absolutely below magnitude 1,
// so comparisons near zero do not demand impossible precision). This is
// the comparison to use for computed aggregates: serial and parallel
// Welford merges, prefix-cube corner sums, and bootstrap statistics all
// agree only up to floating-point reassociation.
func ApproxEqual(a, b, tol float64) bool {
	if a == b { // fast path; also covers shared infinities
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return math.Abs(a-b) <= tol*scale
}
