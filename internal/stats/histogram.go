package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-width bucket histogram over [Min, Max). Values
// outside the range are clamped into the first/last bucket. It is used by
// the dataset generators' self-checks and the experiment reports.
type Histogram struct {
	Min, Max float64
	Counts   []int64
	total    int64
}

// NewHistogram creates a histogram with the given number of buckets
// spanning [min, max). It panics if buckets <= 0 or max <= min.
func NewHistogram(min, max float64, buckets int) *Histogram {
	if buckets <= 0 {
		panic("stats: NewHistogram needs at least one bucket")
	}
	if max <= min {
		panic("stats: NewHistogram needs max > min")
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int64, buckets)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	b := int(float64(len(h.Counts)) * (x - h.Min) / (h.Max - h.Min))
	if b < 0 {
		b = 0
	}
	if b >= len(h.Counts) {
		b = len(h.Counts) - 1
	}
	h.Counts[b]++
	h.total++
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int64 { return h.total }

// Fraction returns the share of observations in bucket b.
func (h *Histogram) Fraction(b int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[b]) / float64(h.total)
}

// String renders a compact ASCII bar chart, one line per bucket.
func (h *Histogram) String() string {
	var sb strings.Builder
	maxC := int64(1)
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	width := (h.Max - h.Min) / float64(len(h.Counts))
	for i, c := range h.Counts {
		bar := int(math.Round(40 * float64(c) / float64(maxC)))
		fmt.Fprintf(&sb, "[%10.2f, %10.2f) %8d %s\n",
			h.Min+float64(i)*width, h.Min+float64(i+1)*width, c,
			strings.Repeat("#", bar))
	}
	return sb.String()
}
