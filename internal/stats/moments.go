package stats

import "math"

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Variance returns the population variance of xs (dividing by n), or 0 for
// slices with fewer than one element. AQP variance formulas in the paper
// (Example 1) use the population form over the sample.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n)
}

// SampleVariance returns the unbiased sample variance (dividing by n-1),
// or 0 when n < 2.
func SampleVariance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// Covariance returns the population covariance of xs and ys. The two
// slices must have the same length; it panics otherwise.
func Covariance(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: Covariance length mismatch")
	}
	n := len(xs)
	if n == 0 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	s := 0.0
	for i := range xs {
		s += (xs[i] - mx) * (ys[i] - my)
	}
	return s / float64(n)
}

// Correlation returns the Pearson correlation coefficient of xs and ys, or
// 0 when either has zero variance.
func Correlation(xs, ys []float64) float64 {
	vx, vy := Variance(xs), Variance(ys)
	if vx == 0 || vy == 0 {
		return 0
	}
	return Covariance(xs, ys) / math.Sqrt(vx*vy)
}

// Moments accumulates count, mean and M2 (sum of squared deviations)
// incrementally using Welford's algorithm. The zero value is ready to use.
type Moments struct {
	n    int64
	mean float64
	m2   float64
	sum  float64
	min  float64
	max  float64
}

// Add folds x into the accumulator.
func (m *Moments) Add(x float64) {
	if m.n == 0 {
		m.min, m.max = x, x
	} else {
		if x < m.min {
			m.min = x
		}
		if x > m.max {
			m.max = x
		}
	}
	m.n++
	m.sum += x
	d := x - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (x - m.mean)
}

// Count returns the number of observations.
func (m *Moments) Count() int64 { return m.n }

// Sum returns the running sum.
func (m *Moments) Sum() float64 { return m.sum }

// Mean returns the running mean, or 0 before any observation.
func (m *Moments) Mean() float64 { return m.mean }

// Variance returns the running population variance.
func (m *Moments) Variance() float64 {
	if m.n == 0 {
		return 0
	}
	return m.m2 / float64(m.n)
}

// SampleVariance returns the running unbiased variance (n-1 denominator).
func (m *Moments) SampleVariance() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n-1)
}

// Min returns the smallest observation, or 0 before any observation.
func (m *Moments) Min() float64 { return m.min }

// Max returns the largest observation, or 0 before any observation.
func (m *Moments) Max() float64 { return m.max }

// Merge combines another accumulator into m (parallel Welford merge).
func (m *Moments) Merge(o *Moments) {
	if o.n == 0 {
		return
	}
	if m.n == 0 {
		*m = *o
		return
	}
	n := m.n + o.n
	d := o.mean - m.mean
	m.m2 += o.m2 + d*d*float64(m.n)*float64(o.n)/float64(n)
	m.mean += d * float64(o.n) / float64(n)
	m.sum += o.sum
	if o.min < m.min {
		m.min = o.min
	}
	if o.max > m.max {
		m.max = o.max
	}
	m.n = n
}

// Median returns the median of xs without modifying it. It returns 0 for
// an empty slice. For even lengths it returns the mean of the two middle
// order statistics.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	cp := make([]float64, n)
	copy(cp, xs)
	sortFloat64s(cp)
	if q <= 0 {
		return cp[0]
	}
	if q >= 1 {
		return cp[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return cp[lo]
	}
	frac := pos - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}

// sortFloat64s is an in-place introsort-free quicksort specialization used
// to avoid pulling the sort package's interface machinery into hot loops.
func sortFloat64s(xs []float64) {
	if len(xs) < 2 {
		return
	}
	// Standard three-way quicksort with insertion-sort leaves.
	var rec func(lo, hi int)
	rec = func(lo, hi int) {
		for hi-lo > 12 {
			mid := lo + (hi-lo)/2
			// median-of-three pivot
			if xs[mid] < xs[lo] {
				xs[mid], xs[lo] = xs[lo], xs[mid]
			}
			if xs[hi] < xs[lo] {
				xs[hi], xs[lo] = xs[lo], xs[hi]
			}
			if xs[hi] < xs[mid] {
				xs[hi], xs[mid] = xs[mid], xs[hi]
			}
			p := xs[mid]
			i, j := lo, hi
			for i <= j {
				for xs[i] < p {
					i++
				}
				for xs[j] > p {
					j--
				}
				if i <= j {
					xs[i], xs[j] = xs[j], xs[i]
					i++
					j--
				}
			}
			if j-lo < hi-i {
				rec(lo, j)
				lo = i
			} else {
				rec(i, hi)
				hi = j
			}
		}
		for i := lo + 1; i <= hi; i++ {
			for j := i; j > lo && xs[j] < xs[j-1]; j-- {
				xs[j], xs[j-1] = xs[j-1], xs[j]
			}
		}
	}
	rec(0, len(xs)-1)
}
