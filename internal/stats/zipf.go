package stats

import (
	"math"
	"sort"
)

// Zipf generates Zipf-distributed values over {1, ..., n} with skew
// parameter s >= 0 (s = 0 is uniform). The TPCD-Skew benchmark that the
// paper uses generates its key columns with exactly this family (z = 2 in
// the paper's experiments).
//
// Generation uses the inverse-CDF method over a precomputed cumulative
// table, which is exact (unlike rejection samplers) and fast for the domain
// sizes used here (binary search per draw).
type Zipf struct {
	n   int
	cdf []float64
}

// NewZipf builds a Zipf distribution over {1,...,n} with exponent s.
// It panics if n <= 0 or s < 0.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("stats: NewZipf called with n <= 0")
	}
	if s < 0 {
		panic("stats: NewZipf called with s < 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), s)
		cdf[i-1] = sum
	}
	inv := 1 / sum
	for i := range cdf {
		cdf[i] *= inv
	}
	cdf[n-1] = 1 // guard against rounding
	return &Zipf{n: n, cdf: cdf}
}

// N returns the domain size.
func (z *Zipf) N() int { return z.n }

// Draw returns a value in [1, n] with rank-frequency proportional to
// rank^(-s).
func (z *Zipf) Draw(r *RNG) int {
	u := r.Float64()
	return sort.SearchFloat64s(z.cdf, u) + 1
}

// PMF returns the probability of value v (1-based rank).
func (z *Zipf) PMF(v int) float64 {
	if v < 1 || v > z.n {
		return 0
	}
	if v == 1 {
		return z.cdf[0]
	}
	return z.cdf[v-1] - z.cdf[v-2]
}
