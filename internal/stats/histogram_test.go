package stats

import (
	"strings"
	"testing"
)

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	for b := 0; b < 10; b++ {
		if h.Counts[b] != 1 {
			t.Errorf("bucket %d count = %d, want 1", b, h.Counts[b])
		}
	}
	if h.Total() != 10 {
		t.Errorf("Total = %d", h.Total())
	}
}

func TestHistogramClamping(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Add(-100)
	h.Add(100)
	h.Add(10) // right edge clamps into last bucket
	if h.Counts[0] != 1 {
		t.Errorf("low clamp: %d", h.Counts[0])
	}
	if h.Counts[4] != 2 {
		t.Errorf("high clamp: %d", h.Counts[4])
	}
}

func TestHistogramFraction(t *testing.T) {
	h := NewHistogram(0, 4, 2)
	if h.Fraction(0) != 0 {
		t.Error("empty histogram fraction should be 0")
	}
	h.Add(1)
	h.Add(1)
	h.Add(3)
	if got := h.Fraction(0); got != 2.0/3 {
		t.Errorf("Fraction(0) = %v", got)
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(0, 2, 2)
	h.Add(0.5)
	s := h.String()
	if !strings.Contains(s, "#") {
		t.Errorf("expected a bar in output: %q", s)
	}
	if strings.Count(s, "\n") != 2 {
		t.Errorf("expected 2 lines, got %q", s)
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 1, 0) },
		func() { NewHistogram(1, 1, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
