// Package stats provides the statistical substrate for the AQP++
// reproduction: a deterministic random number generator, heavy-tailed
// generators (Zipf), normal quantiles for confidence intervals, moment
// accumulators, covariance, and bootstrap resampling.
//
// Everything in this package is deterministic given a seed so that the
// experiment harness is reproducible run-to-run.
package stats

import "math"

// RNG is a small, fast, seedable pseudo-random number generator based on
// the PCG-XSH-RR 64/32 construction. It is not safe for concurrent use;
// create one per goroutine (see Split).
type RNG struct {
	state uint64
	inc   uint64
}

const pcgMultiplier = 6364136223846793005

// NewRNG returns a generator seeded with seed. Two generators with the same
// seed produce the same stream.
func NewRNG(seed uint64) *RNG {
	r := &RNG{inc: (seed << 1) | 1}
	r.state = seed + r.inc
	r.Uint32()
	return r
}

// Split derives an independent generator from r. The derived stream is
// deterministic given r's current state, so splitting at the same point in
// a program always yields the same child stream.
func (r *RNG) Split() *RNG {
	return &RNG{
		state: r.Uint64() | 1,
		inc:   r.Uint64() | 1,
	}
}

// Uint32 returns a uniformly distributed 32-bit value.
func (r *RNG) Uint32() uint32 {
	old := r.state
	r.state = old*pcgMultiplier + r.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// Uint64 returns a uniformly distributed 64-bit value.
func (r *RNG) Uint64() uint64 {
	return uint64(r.Uint32())<<32 | uint64(r.Uint32())
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn called with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("stats: Int63n called with n <= 0")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate using the Marsaglia polar
// method.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle applies a Fisher-Yates shuffle over n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
