package stats

import (
	"math"
	"testing"
)

func TestZipfPMFSumsToOne(t *testing.T) {
	for _, s := range []float64{0, 0.5, 1, 2} {
		z := NewZipf(100, s)
		sum := 0.0
		for v := 1; v <= 100; v++ {
			sum += z.PMF(v)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("s=%v: PMF sums to %v", s, sum)
		}
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	z := NewZipf(10, 0)
	for v := 1; v <= 10; v++ {
		if math.Abs(z.PMF(v)-0.1) > 1e-12 {
			t.Errorf("PMF(%d) = %v, want 0.1", v, z.PMF(v))
		}
	}
}

func TestZipfSkewOrdering(t *testing.T) {
	z := NewZipf(50, 2)
	for v := 2; v <= 50; v++ {
		if z.PMF(v) > z.PMF(v-1) {
			t.Errorf("PMF not monotone at %d", v)
		}
	}
	// With z=2 the head is very heavy: P(1) = 1/zeta(2,50) > 0.6.
	if z.PMF(1) < 0.6 {
		t.Errorf("PMF(1) = %v, expected heavy head", z.PMF(1))
	}
}

func TestZipfDrawMatchesPMF(t *testing.T) {
	z := NewZipf(20, 1)
	r := NewRNG(99)
	counts := make([]int, 21)
	const trials = 200000
	for i := 0; i < trials; i++ {
		v := z.Draw(r)
		if v < 1 || v > 20 {
			t.Fatalf("draw out of range: %d", v)
		}
		counts[v]++
	}
	for v := 1; v <= 20; v++ {
		emp := float64(counts[v]) / trials
		want := z.PMF(v)
		if math.Abs(emp-want) > 0.01 {
			t.Errorf("value %d: empirical %v vs pmf %v", v, emp, want)
		}
	}
}

func TestZipfOutOfRangePMF(t *testing.T) {
	z := NewZipf(5, 1)
	if z.PMF(0) != 0 || z.PMF(6) != 0 || z.PMF(-1) != 0 {
		t.Error("out-of-range PMF should be 0")
	}
}

func TestZipfPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewZipf(0, 1) },
		func() { NewZipf(10, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
