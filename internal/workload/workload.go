// Package workload generates the random range-query workloads of the
// paper's evaluation: queries drawn from a template with joint selectivity
// inside a target band (0.5%–5% throughout §7), optional group-by
// clauses, and the outlier-covering filter used by the measure-biased
// sampling experiment (Figure 10a).
package workload

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"aqppp/internal/cube"
	"aqppp/internal/engine"
	"aqppp/internal/stats"
)

// Config parameterizes a workload.
type Config struct {
	// Template supplies the aggregate column and condition dimensions.
	Template cube.Template
	// Count is the number of queries to generate.
	Count int
	// SelectivityLo/Hi bound the joint selectivity (defaults 0.005/0.05).
	SelectivityLo, SelectivityHi float64
	// Func is the aggregate (default SUM; COUNT ignores Template.Agg).
	Func engine.AggFunc
	// GroupBy optionally appends a GROUP BY clause to every query.
	GroupBy []string
	// Seed drives generation.
	Seed uint64
	// MaxAttempts bounds the per-query rejection loop (default 60).
	MaxAttempts int
}

// Generate produces Count queries whose selectivity lies within the band
// (verified against the table; the closest attempt is kept when the band
// cannot be hit, e.g. under extreme skew).
func Generate(tbl *engine.Table, cfg Config) ([]engine.Query, error) {
	if cfg.Count <= 0 {
		return nil, fmt.Errorf("workload: count %d", cfg.Count)
	}
	if cfg.SelectivityLo == 0 && cfg.SelectivityHi == 0 {
		cfg.SelectivityLo, cfg.SelectivityHi = 0.005, 0.05
	}
	if cfg.SelectivityLo <= 0 || cfg.SelectivityHi > 1 || cfg.SelectivityLo > cfg.SelectivityHi {
		return nil, fmt.Errorf("workload: bad selectivity band [%v, %v]", cfg.SelectivityLo, cfg.SelectivityHi)
	}
	if cfg.MaxAttempts == 0 {
		cfg.MaxAttempts = 60
	}
	d := len(cfg.Template.Dims)
	if d == 0 {
		return nil, fmt.Errorf("workload: template has no dimensions")
	}
	n := tbl.NumRows()
	if n == 0 {
		return nil, fmt.Errorf("workload: empty table")
	}
	// Per-dimension sorted marginals for window sampling.
	marginals := make([][]float64, d)
	for i, dim := range cfg.Template.Dims {
		col, err := tbl.Column(dim)
		if err != nil {
			return nil, err
		}
		m := make([]float64, n)
		for row := 0; row < n; row++ {
			m[row] = col.Ordinal(row)
		}
		sort.Float64s(m)
		marginals[i] = m
	}
	r := stats.NewRNG(cfg.Seed)
	out := make([]engine.Query, 0, cfg.Count)
	for len(out) < cfg.Count {
		q, err := generateOne(tbl, cfg, marginals, r)
		if err != nil {
			return nil, err
		}
		out = append(out, q)
	}
	return out, nil
}

func generateOne(tbl *engine.Table, cfg Config, marginals [][]float64, r *stats.RNG) (engine.Query, error) {
	d := len(cfg.Template.Dims)
	n := tbl.NumRows()
	var best engine.Query
	bestDist := math.Inf(1)
	for attempt := 0; attempt < cfg.MaxAttempts; attempt++ {
		target := cfg.SelectivityLo + r.Float64()*(cfg.SelectivityHi-cfg.SelectivityLo)
		perDim := math.Pow(target, 1/float64(d))
		ranges := make([]engine.Range, d)
		for i, dim := range cfg.Template.Dims {
			m := marginals[i]
			span := int(perDim * float64(n))
			if span < 1 {
				span = 1
			}
			if span > n {
				span = n
			}
			start := 0
			if n-span > 0 {
				start = r.Intn(n - span + 1)
			}
			ranges[i] = engine.Range{Col: dim, Lo: m[start], Hi: m[start+span-1]}
		}
		q := engine.Query{Func: cfg.Func, Col: cfg.Template.Agg, Ranges: ranges, GroupBy: cfg.GroupBy}
		if cfg.Func == engine.Count {
			q.Col = ""
		}
		sel, err := measureSelectivity(tbl, ranges)
		if err != nil {
			return engine.Query{}, err
		}
		if sel >= cfg.SelectivityLo && sel <= cfg.SelectivityHi {
			return q, nil
		}
		mid := (cfg.SelectivityLo + cfg.SelectivityHi) / 2
		if dist := math.Abs(sel - mid); dist < bestDist {
			bestDist = dist
			best = q
		}
	}
	return best, nil
}

// measureSelectivity counts matching rows exactly.
func measureSelectivity(tbl *engine.Table, ranges []engine.Range) (float64, error) {
	sel, err := tbl.Filter(ranges)
	if err != nil {
		return 0, err
	}
	return float64(sel.Count()) / float64(tbl.NumRows()), nil
}

// Selectivity reports a query's exact selectivity on the table.
func Selectivity(tbl *engine.Table, q engine.Query) (float64, error) {
	return measureSelectivity(tbl, q.Ranges)
}

// OutlierThreshold returns the paper's Figure 10(a) outlier cut:
// median(measure) + 3·SD(measure).
func OutlierThreshold(tbl *engine.Table, measure string) (float64, error) {
	col, err := tbl.Column(measure)
	if err != nil {
		return 0, err
	}
	n := col.Len()
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = col.Float(i)
	}
	return stats.Median(vals) + 3*math.Sqrt(stats.Variance(vals)), nil
}

// CoversOutlier reports whether the query's region contains at least one
// row whose measure exceeds the threshold.
func CoversOutlier(tbl *engine.Table, q engine.Query, measure string, threshold float64) (bool, error) {
	sel, err := tbl.Filter(q.Ranges)
	if err != nil {
		return false, err
	}
	col, err := tbl.Column(measure)
	if err != nil {
		return false, err
	}
	// Word iteration also buys an early exit the ForEach closure could
	// not express: stop at the first outlier.
	for wi, w := range sel.Words() {
		base := wi << 6
		for w != 0 {
			if col.Float(base+bits.TrailingZeros64(w)) > threshold {
				return true, nil
			}
			w &= w - 1
		}
	}
	return false, nil
}

// FilterOutlierCovering keeps only queries covering at least one outlier
// (the measure-biased experiment's workload).
func FilterOutlierCovering(tbl *engine.Table, qs []engine.Query, measure string) ([]engine.Query, error) {
	thr, err := OutlierThreshold(tbl, measure)
	if err != nil {
		return nil, err
	}
	var out []engine.Query
	for _, q := range qs {
		ok, err := CoversOutlier(tbl, q, measure, thr)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, q)
		}
	}
	return out, nil
}
