package workload

import (
	"testing"

	"aqppp/internal/cube"
	"aqppp/internal/engine"
	"aqppp/internal/stats"
)

func testTable(n int, seed uint64) *engine.Table {
	r := stats.NewRNG(seed)
	c1 := make([]int64, n)
	c2 := make([]int64, n)
	a := make([]float64, n)
	for i := 0; i < n; i++ {
		c1[i] = int64(r.Intn(1000) + 1)
		c2[i] = int64(r.Intn(200) + 1)
		a[i] = 100 + 10*r.NormFloat64()
		if r.Float64() < 0.002 {
			a[i] *= 20 // outliers
		}
	}
	return engine.MustNewTable("t",
		engine.NewIntColumn("c1", c1),
		engine.NewIntColumn("c2", c2),
		engine.NewFloatColumn("a", a),
	)
}

func TestGenerateSelectivityBand(t *testing.T) {
	tbl := testTable(20000, 1)
	qs, err := Generate(tbl, Config{
		Template: cube.Template{Agg: "a", Dims: []string{"c1"}},
		Count:    50, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 50 {
		t.Fatalf("generated %d queries", len(qs))
	}
	inBand := 0
	for _, q := range qs {
		s, err := Selectivity(tbl, q)
		if err != nil {
			t.Fatal(err)
		}
		if s >= 0.004 && s <= 0.06 {
			inBand++
		}
	}
	if inBand < 45 {
		t.Errorf("only %d/50 queries near the selectivity band", inBand)
	}
}

func TestGenerate2DSelectivity(t *testing.T) {
	tbl := testTable(20000, 2)
	qs, err := Generate(tbl, Config{
		Template: cube.Template{Agg: "a", Dims: []string{"c1", "c2"}},
		Count:    30, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	inBand := 0
	for _, q := range qs {
		if len(q.Ranges) != 2 {
			t.Fatalf("query has %d ranges", len(q.Ranges))
		}
		s, _ := Selectivity(tbl, q)
		if s >= 0.003 && s <= 0.08 {
			inBand++
		}
	}
	if inBand < 24 {
		t.Errorf("only %d/30 2D queries near the band", inBand)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	tbl := testTable(5000, 3)
	cfg := Config{Template: cube.Template{Agg: "a", Dims: []string{"c1"}}, Count: 5, Seed: 11}
	a, _ := Generate(tbl, cfg)
	b, _ := Generate(tbl, cfg)
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatal("same seed produced different workloads")
		}
	}
}

func TestGenerateGroupByAndCount(t *testing.T) {
	tbl := testTable(5000, 4)
	qs, err := Generate(tbl, Config{
		Template: cube.Template{Agg: "a", Dims: []string{"c1"}},
		Count:    3, Seed: 13,
		Func:    engine.Count,
		GroupBy: []string{"c2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		if q.Func != engine.Count || q.Col != "" {
			t.Errorf("COUNT query malformed: %v", q)
		}
		if len(q.GroupBy) != 1 {
			t.Errorf("GROUP BY missing: %v", q)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	tbl := testTable(100, 5)
	if _, err := Generate(tbl, Config{Template: cube.Template{Agg: "a"}, Count: 1}); err == nil {
		t.Error("no dims accepted")
	}
	if _, err := Generate(tbl, Config{Template: cube.Template{Agg: "a", Dims: []string{"c1"}}, Count: 0}); err == nil {
		t.Error("zero count accepted")
	}
	if _, err := Generate(tbl, Config{
		Template: cube.Template{Agg: "a", Dims: []string{"c1"}}, Count: 1,
		SelectivityLo: 0.5, SelectivityHi: 0.1,
	}); err == nil {
		t.Error("inverted band accepted")
	}
	if _, err := Generate(tbl, Config{Template: cube.Template{Agg: "a", Dims: []string{"nope"}}, Count: 1}); err == nil {
		t.Error("bad dim accepted")
	}
}

func TestOutlierThresholdAndCover(t *testing.T) {
	tbl := testTable(20000, 6)
	thr, err := OutlierThreshold(tbl, "a")
	if err != nil {
		t.Fatal(err)
	}
	if thr < 100 {
		t.Errorf("threshold = %v suspiciously low", thr)
	}
	// The full-domain query must cover some outlier.
	full := engine.Query{Func: engine.Sum, Col: "a"}
	ok, err := CoversOutlier(tbl, full, "a", thr)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("full query covers no outlier despite injected ones")
	}
}

func TestFilterOutlierCovering(t *testing.T) {
	tbl := testTable(20000, 7)
	qs, _ := Generate(tbl, Config{
		Template: cube.Template{Agg: "a", Dims: []string{"c1"}},
		Count:    40, Seed: 15,
	})
	kept, err := FilterOutlierCovering(tbl, qs, "a")
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) == 0 {
		t.Error("no outlier-covering queries at 0.2% outlier rate and ~2% selectivity")
	}
	if len(kept) > len(qs) {
		t.Error("filter grew the workload")
	}
	thr, _ := OutlierThreshold(tbl, "a")
	for _, q := range kept {
		ok, _ := CoversOutlier(tbl, q, "a", thr)
		if !ok {
			t.Fatal("kept query covers no outlier")
		}
	}
}
