package aqppp

import (
	"context"
	"errors"
	"math"

	"aqppp/internal/core"
	"aqppp/internal/engine"
	"aqppp/internal/exec"
)

// Termination reasons reported in ProgressiveSummary.Reason.
const (
	// ProgressiveContractMet: the streamed interval reached the
	// contract's bound.
	ProgressiveContractMet = "contract-met"
	// ProgressiveSampleExhausted: every table row entered the sample.
	ProgressiveSampleExhausted = "sample-exhausted"
	// ProgressiveMaxRounds: the round cap fired first.
	ProgressiveMaxRounds = "max-rounds"
	// ProgressiveBudgetExhausted: the budget's deadline fired between
	// rounds; the rounds already streamed stand as the answer.
	ProgressiveBudgetExhausted = "budget-exhausted"
)

// ProgressiveOptions configures one progressive (online-aggregation)
// query: the sample grows by StepRows each round and every round
// streams the best answer so far.
type ProgressiveOptions struct {
	// Contract, when set, terminates the stream as soon as the
	// interval meets the bound (its confidence also overrides the
	// preparation's CI level for the stream). Nil streams until the
	// sample, the round cap, or the budget runs out.
	Contract *Contract
	// StepRows is the number of table rows added per round (default:
	// 2% of the table, at least 1024).
	StepRows int
	// MaxRounds caps the stream (default 64).
	MaxRounds int
	// Seed fixes the row permutation the sample grows along.
	Seed uint64
}

// ProgressiveRound is one streamed refinement. Rounds are monotonically
// non-widening: each round reports the smallest interval seen so far
// (with its paired value), so a noisy round never widens the bar.
type ProgressiveRound struct {
	Round      int
	Value      float64
	HalfWidth  float64
	Confidence float64
	// SampleRows is the cumulative rows scanned into the sample.
	SampleRows int
	// Met reports whether this round's interval meets the contract.
	Met bool
}

// ProgressiveSummary is the stream's terminal state.
type ProgressiveSummary struct {
	Rounds     int
	Reason     string
	Met        bool
	Value      float64
	HalfWidth  float64
	Confidence float64
	SampleRows int
}

// QueryProgressive answers a SQL statement by online aggregation
// (§2's online-aggregation lineage in the AQP++ frame): a fixed random
// permutation of the table is scanned in StepRows chunks, every prefix
// is an exact uniform sample, and each round yields a refining
// estimate anchored on the preparation's BP-Cube when the template
// matches. Only scalar SUM/COUNT statements stream (the progressive
// estimator's repertoire); others report ErrUnsupported. yield may be
// nil; a non-nil yield error cancels the stream and classifies as
// ErrCanceled.
func (p *Prepared) QueryProgressive(ctx context.Context, statement string, opts ProgressiveOptions, yield func(ProgressiveRound) error) (ProgressiveSummary, error) {
	return p.QueryProgressiveBudget(ctx, statement, opts, p.db.defaultBudget(), yield)
}

// QueryProgressiveBudget is QueryProgressive with an explicit per-call
// Budget. The budget's deadline is checked between rounds; when it
// fires after at least one round has streamed, the stream terminates
// gracefully with reason "budget-exhausted" instead of failing — the
// rounds already delivered are the answer.
func (p *Prepared) QueryProgressiveBudget(ctx context.Context, statement string, opts ProgressiveOptions, b Budget, yield func(ProgressiveRound) error) (ProgressiveSummary, error) {
	if err := p.live("progressive"); err != nil {
		return ProgressiveSummary{}, err
	}
	if p.proc == nil {
		return ProgressiveSummary{}, &exec.Error{Kind: exec.Unsupported, Op: "progressive",
			Err: errDist("QueryProgressive")}
	}
	q, err := exec.CompileStatement(p.tbl, "progressive", statement)
	if err != nil {
		return ProgressiveSummary{}, err
	}
	conf := p.confidence()
	if opts.Contract != nil {
		if err := opts.Contract.Validate(); err != nil {
			return ProgressiveSummary{}, &exec.Error{Kind: exec.Parse, Op: "progressive", Err: err}
		}
		conf = opts.Contract.ConfidenceOrDefault()
	}
	// A COUNT stream anchors on the COUNT cube when one was prepared;
	// core.Progressive itself checks the template match either way.
	cube := p.proc.Cube
	if q.Func == engine.Count && p.proc.CountCube != nil {
		cube = p.proc.CountCube
	}
	prog, err := core.NewProgressive(p.tbl, cube, conf, opts.Seed)
	if err != nil {
		return ProgressiveSummary{}, &exec.Error{Kind: exec.Internal, Op: "progressive", Err: err}
	}
	n := p.tbl.NumRows()
	step := opts.StepRows
	if step <= 0 {
		step = n / 50
		if step < 1024 {
			step = 1024
		}
	}
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 64
	}
	run, cancel, budgeted := ctx, context.CancelFunc(func() {}), false
	if b.Timeout > 0 {
		run, cancel = context.WithTimeout(ctx, b.Timeout)
		budgeted = true
	}
	defer cancel()

	sum := ProgressiveSummary{Confidence: conf, HalfWidth: math.Inf(1)}
	for round := 1; round <= maxRounds; round++ {
		if err := run.Err(); err != nil {
			if ctx.Err() == nil && budgeted && sum.Rounds > 0 {
				sum.Reason = ProgressiveBudgetExhausted
				return sum, nil
			}
			return ProgressiveSummary{}, classifyProgressive(ctx, budgeted, err)
		}
		before := prog.SampleSize()
		got := prog.Step(step)
		ans, err := prog.Answer(q)
		if err != nil {
			return ProgressiveSummary{}, classifyProgressive(ctx, budgeted, err)
		}
		// Non-widening: keep the tightest (value, interval) pair seen.
		if ans.Estimate.HalfWidth < sum.HalfWidth {
			sum.Value, sum.HalfWidth = ans.Estimate.Value, ans.Estimate.HalfWidth
		}
		sum.Rounds, sum.SampleRows = round, got
		sum.Met = opts.Contract != nil && opts.Contract.Met(sum.Value, sum.HalfWidth)
		if yield != nil {
			r := ProgressiveRound{
				Round: round, Value: sum.Value, HalfWidth: sum.HalfWidth,
				Confidence: conf, SampleRows: got, Met: sum.Met,
			}
			if err := yield(r); err != nil {
				return ProgressiveSummary{}, &exec.Error{Kind: exec.Canceled, Op: "progressive", Err: err}
			}
		}
		if sum.Met {
			sum.Reason = ProgressiveContractMet
			return sum, nil
		}
		if got >= n || got == before {
			sum.Reason = ProgressiveSampleExhausted
			return sum, nil
		}
	}
	sum.Reason = ProgressiveMaxRounds
	return sum, nil
}

// classifyProgressive maps a streaming failure onto the unified
// taxonomy the same way the executor's classify does.
func classifyProgressive(parent context.Context, budgeted bool, err error) error {
	var e *exec.Error
	if errors.As(err, &e) {
		return err
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		if parent.Err() == nil && budgeted {
			return &exec.Error{Kind: exec.BudgetExceeded, Op: "progressive", Err: err}
		}
		return &exec.Error{Kind: exec.Canceled, Op: "progressive", Err: err}
	}
	if errors.Is(err, core.ErrUnsupported) {
		return &exec.Error{Kind: exec.Unsupported, Op: "progressive", Err: err}
	}
	return &exec.Error{Kind: exec.Internal, Op: "progressive", Err: err}
}
