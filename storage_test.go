package aqppp

import (
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"aqppp/internal/engine"
	"aqppp/internal/stats"
)

// TestStoreRestartExactAndApprox is the acceptance criterion end to end:
// SaveStore, a fresh DB, OpenStore, and every answer — exact and approx —
// must be identical with no rebuild. The approx CI is computed
// analytically from the persisted sample, so Value, HalfWidth, and
// Confidence are all bit-identical.
func TestStoreRestartExactAndApprox(t *testing.T) {
	db := NewDB()
	if err := db.Register(demoTable(30000, 21)); err != nil {
		t.Fatal(err)
	}
	prep, err := db.Prepare(PrepareOptions{
		Table: "demo", Aggregate: "v", Dimensions: []string{"k"},
		SampleRate: 0.05, CellBudget: 25, Seed: 7, WithMinMax: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	stmts := []string{
		"SELECT SUM(v) FROM demo WHERE k BETWEEN 50 AND 300",
		"SELECT AVG(v) FROM demo WHERE k BETWEEN 120 AND 480",
		"SELECT COUNT(*) FROM demo WHERE k BETWEEN 10 AND 490",
		"SELECT MIN(v) FROM demo WHERE k BETWEEN 50 AND 300",
	}
	exactBefore := make([]engine.Result, len(stmts))
	approxBefore := make([]Result, len(stmts))
	for i, s := range stmts {
		if exactBefore[i], err = db.Exact(s); err != nil {
			t.Fatal(err)
		}
		if approxBefore[i], err = prep.Query(s); err != nil {
			t.Fatal(err)
		}
	}

	path := filepath.Join(t.TempDir(), "demo.aqps")
	if err := db.SaveStore(path, "demo", NamedPrep{Name: "h", Prep: prep}); err != nil {
		t.Fatal(err)
	}

	// A fresh process: new DB, only the container.
	db2 := NewDB()
	defer db2.CloseStores()
	preps, err := db2.OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(preps) != 1 || preps[0].Name != "h" {
		t.Fatalf("OpenStore preps = %+v, want one named %q", preps, "h")
	}
	s, ok := db2.StoreFor("demo")
	if !ok {
		t.Fatal("StoreFor lost the open store")
	}
	// No rebuild and no data reads: opening is metadata-only.
	if m := s.CacheStats().Misses; m != 0 {
		t.Fatalf("OpenStore faulted %d blocks; restart must not scan data", m)
	}

	for i, stmt := range stmts {
		got, err := db2.Exact(stmt)
		if err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
		if !reflect.DeepEqual(got, exactBefore[i]) {
			t.Errorf("%s: exact drifted across restart: %+v != %+v", stmt, got, exactBefore[i])
		}
		ga, err := preps[0].Prep.Query(stmt)
		if err != nil {
			t.Fatalf("%s (approx): %v", stmt, err)
		}
		w := approxBefore[i]
		if !stats.ExactEqual(ga.Value, w.Value) || !stats.ExactEqual(ga.HalfWidth, w.HalfWidth) ||
			ga.Confidence != w.Confidence || ga.UsedPrecomputed != w.UsedPrecomputed {
			t.Errorf("%s: approx drifted across restart:\n got %+v\nwant %+v", stmt, ga, w)
		}
	}

	st := preps[0].Prep.Stats()
	if st.SampleRows == 0 {
		t.Error("restored prep reports no sample rows")
	}
}

// TestStoreRestartRandomized fuzzes the persistence path: random tables,
// random range queries, exact answers bit-identical disk vs memory.
func TestStoreRestartRandomized(t *testing.T) {
	r := stats.NewRNG(77)
	for trial := 0; trial < 3; trial++ {
		db := NewDB()
		n := 5000 + r.Intn(20000)
		if err := db.Register(demoTable(n, r.Uint64())); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "f.aqps")
		if err := db.SaveStore(path, "demo"); err != nil {
			t.Fatal(err)
		}
		db2 := NewDB()
		preps, err := db2.OpenStore(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(preps) != 0 {
			t.Fatalf("prep-free container returned %d preps", len(preps))
		}
		for q := 0; q < 10; q++ {
			lo := r.Intn(400)
			hi := lo + 1 + r.Intn(500-lo)
			for _, tmpl := range []string{
				"SELECT SUM(v) FROM demo WHERE k BETWEEN %d AND %d",
				"SELECT COUNT(*) FROM demo WHERE k BETWEEN %d AND %d",
				"SELECT AVG(v) FROM demo WHERE k BETWEEN %d AND %d",
			} {
				stmt := fmt.Sprintf(tmpl, lo, hi)
				want, err := db.Exact(stmt)
				if err != nil {
					t.Fatal(err)
				}
				got, err := db2.Exact(stmt)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("trial %d %s: disk %+v != memory %+v", trial, stmt, got, want)
				}
			}
		}
		if err := db2.CloseStores(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSaveStoreValidation pins the refusal surface: unknown tables,
// preps over the wrong table, and store-backed tables are all rejected
// with exec-typed errors.
func TestSaveStoreValidation(t *testing.T) {
	db := NewDB()
	if err := db.Register(demoTable(5000, 31)); err != nil {
		t.Fatal(err)
	}
	other := demoTable(1000, 32)
	other.Name = "other"
	if err := db.Register(other); err != nil {
		t.Fatal(err)
	}
	prep, err := db.Prepare(PrepareOptions{
		Table: "demo", Aggregate: "v", Dimensions: []string{"k"},
		SampleRate: 0.1, CellBudget: 10, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := db.SaveStore(filepath.Join(dir, "x.aqps"), "missing"); err == nil {
		t.Error("unknown table accepted")
	}
	err = db.SaveStore(filepath.Join(dir, "x.aqps"), "other", NamedPrep{Prep: prep})
	if err == nil || !strings.Contains(err.Error(), "not") {
		t.Errorf("cross-table prep: %v, want table-mismatch error", err)
	}
	// A table served from a store cannot be re-saved.
	path := filepath.Join(dir, "demo.aqps")
	if err := db.SaveStore(path, "demo", NamedPrep{Name: "h", Prep: prep}); err != nil {
		t.Fatal(err)
	}
	db2 := NewDB()
	defer db2.CloseStores()
	if _, err := db2.OpenStore(path); err != nil {
		t.Fatal(err)
	}
	if err := db2.SaveStore(filepath.Join(dir, "again.aqps"), "demo"); err == nil {
		t.Error("re-saving a store-backed table accepted")
	}
}

// TestStoreDropAndSnapshots pins the registry wiring: Drop closes and
// forgets the store, StoreSnapshots reports sorted per-table state.
func TestStoreDropAndSnapshots(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"beta", "alpha"} {
		db := NewDB()
		tbl := demoTable(3000, 41)
		tbl.Name = name
		if err := db.Register(tbl); err != nil {
			t.Fatal(err)
		}
		if err := db.SaveStore(filepath.Join(dir, name+".aqps"), name); err != nil {
			t.Fatal(err)
		}
	}
	db := NewDB()
	defer db.CloseStores()
	for _, name := range []string{"beta", "alpha"} {
		if _, err := db.OpenStore(filepath.Join(dir, name+".aqps")); err != nil {
			t.Fatal(err)
		}
	}
	snaps := db.StoreSnapshots()
	if len(snaps) != 2 || snaps[0].Table != "alpha" || snaps[1].Table != "beta" {
		t.Fatalf("StoreSnapshots = %+v, want alpha then beta", snaps)
	}
	if snaps[0].Rows != 3000 || snaps[0].FileBytes == 0 {
		t.Errorf("snapshot content = %+v", snaps[0])
	}
	db.Drop("alpha")
	if _, ok := db.StoreFor("alpha"); ok {
		t.Error("Drop left the store registered")
	}
	if got := db.StoreSnapshots(); len(got) != 1 || got[0].Table != "beta" {
		t.Errorf("after drop: %+v", got)
	}
}
