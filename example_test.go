package aqppp_test

import (
	"fmt"
	"log"

	"aqppp"
	"aqppp/internal/engine"
)

// Example demonstrates the basic prepare-then-query flow on a small
// deterministic table.
func Example() {
	// Ten rows: value = 10 * key.
	keys := make([]int64, 10)
	vals := make([]float64, 10)
	for i := range keys {
		keys[i] = int64(i + 1)
		vals[i] = float64(10 * (i + 1))
	}
	tbl := engine.MustNewTable("toy",
		engine.NewIntColumn("k", keys),
		engine.NewFloatColumn("v", vals),
	)
	db := aqppp.NewDB()
	if err := db.Register(tbl); err != nil {
		log.Fatal(err)
	}
	prep, err := db.Prepare(aqppp.PrepareOptions{
		Table: "toy", Aggregate: "v", Dimensions: []string{"k"},
		SampleRate: 1.0, // full sample: answers are exact
		CellBudget: 10,
		Seed:       1,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := prep.Query("SELECT SUM(v) FROM toy WHERE k BETWEEN 3 AND 6")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%.0f ± %.0f\n", res.Value, res.HalfWidth)
	// Output: 180 ± 0
}
