package aqppp_test

import (
	"context"
	"fmt"
	"log"
	"time"

	"aqppp"
	"aqppp/internal/engine"
)

// Example demonstrates the basic prepare-then-query flow on a small
// deterministic table.
func Example() {
	// Ten rows: value = 10 * key.
	keys := make([]int64, 10)
	vals := make([]float64, 10)
	for i := range keys {
		keys[i] = int64(i + 1)
		vals[i] = float64(10 * (i + 1))
	}
	tbl := engine.MustNewTable("toy",
		engine.NewIntColumn("k", keys),
		engine.NewFloatColumn("v", vals),
	)
	db := aqppp.NewDB()
	if err := db.Register(tbl); err != nil {
		log.Fatal(err)
	}
	prep, err := db.Prepare(aqppp.PrepareOptions{
		Table: "toy", Aggregate: "v", Dimensions: []string{"k"},
		SampleRate: 1.0, // full sample: answers are exact
		CellBudget: 10,
		Seed:       1,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := prep.Query("SELECT SUM(v) FROM toy WHERE k BETWEEN 3 AND 6")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%.0f ± %.0f\n", res.Value, res.HalfWidth)
	// Output: 180 ± 0
}

// ExampleDB_ExactContext runs an exact query under a cancelable context
// with a per-query budget. A generous deadline lets the query finish;
// the same call returns an ErrCanceled-kind error if the caller cancels
// first, or ErrBudgetExceeded if the budget's own timeout expires.
func ExampleDB_ExactContext() {
	keys := make([]int64, 100)
	vals := make([]float64, 100)
	for i := range keys {
		keys[i] = int64(i + 1)
		vals[i] = float64(i + 1)
	}
	tbl := engine.MustNewTable("toy",
		engine.NewIntColumn("k", keys),
		engine.NewFloatColumn("v", vals),
	)
	db := aqppp.NewDB()
	if err := db.Register(tbl); err != nil {
		log.Fatal(err)
	}
	db.SetDefaultBudget(aqppp.Budget{Timeout: time.Minute})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	res, err := db.ExactContext(ctx, "SELECT SUM(v) FROM toy WHERE k BETWEEN 1 AND 10")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sum=%.0f\n", res.Value)

	cancel()
	_, err = db.ExactContext(ctx, "SELECT SUM(v) FROM toy")
	fmt.Println("after cancel:", aqppp.ErrorKindOf(err))
	// Output:
	// sum=55
	// after cancel: canceled
}
