package aqppp

import (
	"fmt"
	"sort"

	"aqppp/internal/core"
	"aqppp/internal/exec"
	"aqppp/internal/store"
)

// This file is the DB's disk-native persistence surface. SaveStore
// writes a registered table together with its prepared state (samples,
// BP-cubes, min/max indexes) into one store container; OpenStore maps
// the container back, registers a lazily-faulting table over it, and
// reconstitutes the preparations without rebuilding anything — restart
// cost is metadata, not sampling or cube scans.

// StoreOptions configures OpenStore.
type StoreOptions struct {
	// CacheBytes bounds the store's decoded-block cache
	// (0 = store.DefaultCacheBytes).
	CacheBytes int64
	// NoMmap forces the portable read path.
	NoMmap bool
}

// NamedPrep pairs a preparation with the handle name it persists (and
// reloads) under. Serving layers key handles by name, so the name round-
// trips through the container with the preparation.
type NamedPrep struct {
	Name string
	Prep *Prepared
}

// SaveStore persists a registered table and any preparations built over
// it to one store container at path. Preparations must be non-sharded
// and belong to the named table. The table must be resident (a table
// opened from a store is already persisted). An empty NamedPrep.Name
// falls back to the preparation's template label.
func (db *DB) SaveStore(path, table string, preps ...NamedPrep) error {
	tbl, err := db.Table(table)
	if err != nil {
		return err
	}
	sps := make([]store.Prep, len(preps))
	for i, np := range preps {
		p := np.Prep
		if err := p.live("save"); err != nil {
			return err
		}
		if p.shp != nil {
			return &exec.Error{Kind: exec.Unsupported, Op: "save",
				Err: fmt.Errorf("sharded preparation over %q cannot be persisted", p.tbl.Name)}
		}
		if p.tbl.Name != table {
			return &exec.Error{Kind: exec.Unsupported, Op: "save",
				Err: fmt.Errorf("preparation is over %q, not %q", p.tbl.Name, table)}
		}
		name := np.Name
		if name == "" {
			name = prepLabel(p.proc, i)
		}
		sps[i] = store.Prep{
			Name:       name,
			Sample:     p.proc.Sample,
			Sub:        p.proc.Sub,
			Cube:       p.proc.Cube,
			CountCube:  p.proc.CountCube,
			MinMax:     p.proc.MinMax,
			Confidence: p.proc.Confidence,
		}
		if p.proc.Cube != nil {
			sps[i].CubeFull = p.proc.Cube.Full
		}
		if p.proc.CountCube != nil {
			sps[i].CountFull = p.proc.CountCube.Full
		}
	}
	return store.Write(path, tbl, sps)
}

// prepLabel names a persisted preparation after its template so store
// listings (/statusz) are readable.
func prepLabel(proc *core.Processor, i int) string {
	if proc.Cube != nil {
		return proc.Cube.Template.String()
	}
	return fmt.Sprintf("prep%d", i)
}

// OpenStore opens the container at path, registers its table (served
// from disk through the store's block cache) and returns the
// reconstituted preparations in the order they were saved, under their
// persisted names. No sample or cube is rebuilt, and no data block is
// read until a query needs it.
func (db *DB) OpenStore(path string) ([]NamedPrep, error) {
	return db.OpenStoreWithOptions(path, StoreOptions{})
}

// OpenStoreWithOptions is OpenStore with an explicit cache bound and
// mmap control.
func (db *DB) OpenStoreWithOptions(path string, opts StoreOptions) ([]NamedPrep, error) {
	s, err := store.Open(path, store.Options{CacheBytes: opts.CacheBytes, NoMmap: opts.NoMmap})
	if err != nil {
		return nil, err
	}
	tbl := s.Table()
	if err := db.Register(tbl); err != nil {
		_ = s.Close()
		return nil, err
	}
	db.mu.Lock()
	db.stores[tbl.Name] = s
	db.mu.Unlock()
	preps := make([]NamedPrep, len(s.Preps()))
	for i, sp := range s.Preps() {
		proc := &core.Processor{
			Sample:     sp.Sample,
			Sub:        sp.Sub,
			Cube:       sp.Cube,
			CountCube:  sp.CountCube,
			MinMax:     sp.MinMax,
			Confidence: sp.Confidence,
		}
		preps[i] = NamedPrep{
			Name: sp.Name,
			Prep: &Prepared{db: db, tbl: tbl, proc: proc, state: db.track(tbl.Name)},
		}
	}
	return preps, nil
}

// StoreFor returns the open store serving a registered table, if any.
func (db *DB) StoreFor(table string) (*store.Store, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	s, ok := db.stores[table]
	return s, ok
}

// StoreSnapshots describes every open store, sorted by table name, for
// observability surfaces.
func (db *DB) StoreSnapshots() []store.Snapshot {
	db.mu.RLock()
	stores := make([]*store.Store, 0, len(db.stores))
	for _, s := range db.stores {
		stores = append(stores, s)
	}
	db.mu.RUnlock()
	snaps := make([]store.Snapshot, len(stores))
	for i, s := range stores {
		snaps[i] = s.Snapshot()
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].Table < snaps[j].Table })
	return snaps
}

// CloseStores closes every open store. Queries against their tables
// fail from then on; call during shutdown after draining.
func (db *DB) CloseStores() error {
	db.mu.Lock()
	stores := db.stores
	db.stores = make(map[string]*store.Store)
	db.mu.Unlock()
	var first error
	for _, s := range stores {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
