module aqppp

go 1.22
