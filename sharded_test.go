package aqppp

import (
	"context"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aqppp/internal/stats"
)

func shardOpts(n int) ShardOptions {
	return ShardOptions{Column: "k", Shards: n}
}

func TestRegisterShardedEndToEnd(t *testing.T) {
	tbl := demoTable(4000, 31)
	plain := NewDB()
	if err := plain.Register(tbl); err != nil {
		t.Fatal(err)
	}
	db := NewDB()
	if err := db.RegisterSharded(tbl, shardOpts(4)); err != nil {
		t.Fatal(err)
	}
	if err := db.RegisterSharded(tbl, shardOpts(2)); err == nil {
		t.Error("duplicate sharded registration did not fail")
	}

	// Exact answers agree with the unsharded DB (float measure: up to
	// reassociation; COUNT: bit-exact).
	sumStmt := "SELECT SUM(v) FROM demo WHERE k BETWEEN 10 AND 400"
	want, err := plain.Exact(sumStmt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := db.Exact(sumStmt)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.ApproxEqual(got.Value, want.Value, 1e-12) {
		t.Errorf("sharded SUM %v vs unsharded %v", got.Value, want.Value)
	}
	cntStmt := "SELECT COUNT(*) FROM demo WHERE k BETWEEN 10 AND 400"
	wantC, _ := plain.Exact(cntStmt)
	gotC, err := db.Exact(cntStmt)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.ExactEqual(gotC.Value, wantC.Value) {
		t.Errorf("sharded COUNT %v != unsharded %v", gotC.Value, wantC.Value)
	}

	// Plans over the sharded table carry the layout, and it folds into
	// the cache key; the unsharded DB's key stays layout-free.
	p, err := db.PlanExact(sumStmt)
	if err != nil {
		t.Fatal(err)
	}
	if p.Shards == nil {
		t.Fatal("sharded plan has no shard layout")
	}
	if !strings.Contains(p.CacheKey(), "shards=range:k:4") {
		t.Errorf("cache key %q does not carry the layout", p.CacheKey())
	}
	pp, err := plain.PlanExact(sumStmt)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(pp.CacheKey(), "shards=") {
		t.Errorf("unsharded cache key %q mentions shards", pp.CacheKey())
	}

	// Approximate path: Prepare builds per-shard processors.
	prep, err := db.Prepare(PrepareOptions{
		Table: "demo", Aggregate: "v", Dimensions: []string{"k"},
		SampleRate: 0.2, CellBudget: 50, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if prep.Processor() != nil || prep.Sample() != nil {
		t.Error("sharded preparation leaked a single-processor view")
	}
	if prep.ShardedProcessor() == nil {
		t.Fatal("sharded preparation has no per-shard state")
	}
	res, err := prep.Query(sumStmt)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(res.Value-want.Value) / math.Abs(want.Value); rel > 0.1 {
		t.Errorf("approx answer off truth by %v", rel)
	}
	if res.HalfWidth <= 0 || res.Confidence != 0.95 {
		t.Errorf("approx interval = ±%v @ %v", res.HalfWidth, res.Confidence)
	}
	gres, err := prep.Query("SELECT AVG(v) FROM demo GROUP BY tier")
	if err != nil {
		t.Fatal(err)
	}
	if len(gres.Groups) != 2 {
		t.Errorf("%d group answers, want 2", len(gres.Groups))
	}

	// Bootstrap path.
	bres, err := prep.QueryBootstrap(sumStmt, 100)
	if err != nil {
		t.Fatal(err)
	}
	if bres.HalfWidth <= 0 {
		t.Errorf("bootstrap half-width = %v", bres.HalfWidth)
	}

	// Stats aggregate across shards.
	st := prep.Stats()
	if st.SampleRows == 0 || st.CubeCells == 0 {
		t.Errorf("sharded stats = %+v", st)
	}

	// Incremental maintenance is refused, classified unsupported.
	if err := prep.Insert(int64(5), 1.0, "gold"); ErrorKindOf(err) != ErrUnsupported {
		t.Errorf("Insert over sharded prep: %v", err)
	}

	// The observability surface sees the layout and the scans above.
	snaps := db.ShardSnapshots()
	if len(snaps) != 1 || snaps[0].Table != "demo" || len(snaps[0].Shards) != 4 {
		t.Fatalf("snapshots = %+v", snaps)
	}
	var scans uint64
	for _, sh := range snaps[0].Shards {
		scans += sh.Scans
	}
	if scans == 0 {
		t.Error("no shard scans recorded")
	}
	if db.Sharded("demo") == nil || db.Sharded("nope") != nil {
		t.Error("Sharded lookup wrong")
	}

	// ExactSharded with explicit fan-out; refuses unsharded tables.
	r2, err := db.ExactSharded(context.Background(), sumStmt, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.ApproxEqual(r2.Value, want.Value, 1e-12) {
		t.Errorf("ExactSharded %v vs truth %v", r2.Value, want.Value)
	}
	if _, err := plain.ExactSharded(context.Background(), sumStmt, 2); ErrorKindOf(err) != ErrUnsupported {
		t.Errorf("ExactSharded over unsharded table: %v", err)
	}
}

func TestReshardInvalidates(t *testing.T) {
	tbl := demoTable(3000, 32)
	db := NewDB()
	if err := db.Register(tbl); err != nil {
		t.Fatal(err)
	}
	gen0 := db.Generation("demo")
	prep, err := db.Prepare(racePrepareOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prep.Query(raceStmt); err != nil {
		t.Fatal(err)
	}

	// Reshard: generation bumps, the old preparation is poisoned, plans
	// switch to the new layout.
	if err := db.Reshard("demo", shardOpts(3)); err != nil {
		t.Fatal(err)
	}
	if g := db.Generation("demo"); g != gen0+1 {
		t.Errorf("generation after reshard = %d, want %d", g, gen0+1)
	}
	if _, err := prep.Query(raceStmt); ErrorKindOf(err) != ErrUnknownTable {
		t.Errorf("stale prep after reshard: %v", err)
	}
	p, err := db.PlanExact(raceStmt)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.CacheKey(), "shards=range:k:3") {
		t.Errorf("post-reshard cache key %q", p.CacheKey())
	}

	// Re-reshard to a different count: key changes again, fresh preps
	// keep working.
	if err := db.Reshard("demo", shardOpts(5)); err != nil {
		t.Fatal(err)
	}
	p2, err := db.PlanExact(raceStmt)
	if err != nil {
		t.Fatal(err)
	}
	if p.CacheKey() == p2.CacheKey() {
		t.Error("cache key did not change across layouts")
	}
	fresh, err := db.Prepare(racePrepareOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.Query(raceStmt); err != nil {
		t.Fatal(err)
	}

	// Drop clears the layout too.
	db.Drop("demo")
	if db.Sharded("demo") != nil {
		t.Error("layout survived Drop")
	}
	if err := db.Reshard("demo", shardOpts(2)); ErrorKindOf(err) != ErrUnknownTable {
		t.Errorf("reshard of dropped table: %v", err)
	}
}

// TestShardChurnRace churns RegisterSharded/Drop/Reshard against
// concurrent sharded queries and preparations under -race: layout
// changes must behave exactly like Drop-churn — no data race, and every
// failure is the duplicate-registration complaint or carries the
// unknown-table kind.
func TestShardChurnRace(t *testing.T) {
	db := NewDB()
	tbl := demoTable(800, 33)
	const rounds = 25

	var wg sync.WaitGroup
	var stop atomic.Bool
	okErr := func(op string, err error) {
		if err == nil {
			return
		}
		if strings.Contains(err.Error(), "already registered") {
			return
		}
		if k := ErrorKindOf(err); k != ErrUnknownTable {
			t.Errorf("%s: kind %v for %v; want unknown-table", op, k, err)
		}
	}

	// Churner: register sharded, flip the layout, drop, repeat.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			okErr("register", db.RegisterSharded(tbl, shardOpts(2+i%3)))
			okErr("reshard", db.Reshard("demo", shardOpts(1+i%4)))
			time.Sleep(time.Millisecond)
			db.Drop("demo")
		}
		okErr("register", db.RegisterSharded(tbl, shardOpts(3)))
		stop.Store(true)
	}()

	// Preparers: build per-shard state and query it mid-churn.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				prep, err := db.Prepare(racePrepareOptions())
				if err != nil {
					okErr("prepare", err)
					continue
				}
				_, err = prep.Query(raceStmt)
				okErr("prepared query", err)
			}
		}()
	}

	// Exact scatter-gather scanners.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				_, err := db.Exact(raceStmt)
				okErr("exact", err)
			}
		}()
	}

	wg.Wait()

	// The registry comes out usable and still sharded.
	if db.Sharded("demo") == nil {
		t.Fatal("table not sharded after churn")
	}
	if _, err := db.Exact(raceStmt); err != nil {
		t.Fatalf("exact after churn: %v", err)
	}
	prep, err := db.Prepare(racePrepareOptions())
	if err != nil {
		t.Fatalf("prepare after churn: %v", err)
	}
	if _, err := prep.Query(raceStmt); err != nil {
		t.Fatalf("query after churn: %v", err)
	}
}
