package aqppp

import (
	"context"
	"fmt"
	"sort"

	"aqppp/internal/engine"
	"aqppp/internal/exec"
	"aqppp/internal/shard"
)

// ShardOptions configures RegisterSharded and Reshard: how a table is
// partitioned for scatter-gather execution.
type ShardOptions struct {
	// Column is the clustering column rows are partitioned on.
	Column string
	// Shards is the partition count N (>= 1).
	Shards int
	// ByHash spreads rows by a hash of the column instead of range
	// clustering. Hash layouts balance skew but give up range pruning;
	// the default range layout re-clusters rows by the column's order,
	// so a range predicate on it skips non-overlapping shards entirely.
	ByHash bool
}

func (o ShardOptions) layout() shard.Layout {
	s := shard.ByRange
	if o.ByHash {
		s = shard.ByHash
	}
	return shard.Layout{Strategy: s, Column: o.Column, N: o.Shards}
}

// RegisterSharded registers a table partitioned into opts.Shards shards.
// Exact queries against it scatter-gather across the shards (merged
// algebraically, so SUM/COUNT/MIN/MAX and integer-valued AVG/VAR are
// bit-identical to the unsharded scan), and Prepare builds one sample
// and BP-cube slice per shard, merged per-stratum at query time. The
// partitioning itself runs before any lock is taken.
func (db *DB) RegisterSharded(tbl *engine.Table, opts ShardOptions) error {
	s, err := shard.Partition(tbl, opts.layout())
	if err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[tbl.Name]; ok {
		return fmt.Errorf("aqppp: table %q already registered", tbl.Name)
	}
	db.tables[tbl.Name] = tbl
	db.shards[tbl.Name] = s
	db.gens[tbl.Name]++
	return nil
}

// Reshard repartitions a registered table under a new layout (or shards
// a table registered unsharded). The table's generation bumps and every
// preparation built over it is invalidated, exactly like Drop: answers
// merged under one layout must never mix with plans or cached entries
// from another. Repartitioning runs outside the lock; if the table is
// dropped or replaced concurrently, Reshard fails without installing
// anything.
func (db *DB) Reshard(name string, opts ShardOptions) error {
	tbl, err := db.Table(name)
	if err != nil {
		return err
	}
	s, err := shard.Partition(tbl, opts.layout())
	if err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if cur, ok := db.tables[name]; !ok || cur != tbl {
		return &exec.Error{Kind: exec.UnknownTable, Op: "reshard",
			Err: fmt.Errorf("table %q changed during reshard", name)}
	}
	db.shards[name] = s
	db.gens[name]++
	for _, st := range db.preps[name] {
		st.dropped.Store(true)
	}
	delete(db.preps, name)
	return nil
}

// lookupSharded resolves a table's shard layout, if it has one.
func (db *DB) lookupSharded(name string) (*shard.Sharded, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	s, ok := db.shards[name]
	return s, ok
}

// Sharded reports a table's partitioned form, or nil if the table is
// not sharded (advanced use: direct scatter-gather execution).
func (db *DB) Sharded(name string) *shard.Sharded {
	s, _ := db.lookupSharded(name)
	return s
}

// ShardSnapshots captures the layout and per-shard scan counters of
// every sharded table, sorted by table name — the serving layer renders
// these into /statusz and /metrics.
func (db *DB) ShardSnapshots() []shard.Snapshot {
	db.mu.RLock()
	names := make([]string, 0, len(db.shards))
	for n := range db.shards {
		names = append(names, n)
	}
	db.mu.RUnlock()
	sort.Strings(names)
	snaps := make([]shard.Snapshot, 0, len(names))
	for _, n := range names {
		if s, ok := db.lookupSharded(n); ok {
			snaps = append(snaps, s.Snapshot())
		}
	}
	return snaps
}

// ExactSharded runs a statement scatter-gather against a sharded table
// with an explicit fan-out (<= 0 selects GOMAXPROCS); the ordinary
// Exact path does the same with the default fan-out.
func (db *DB) ExactSharded(ctx context.Context, statement string, workers int) (engine.Result, error) {
	p, err := db.PlanExact(statement)
	if err != nil {
		return engine.Result{}, err
	}
	if p.Shards == nil {
		return engine.Result{}, &exec.Error{Kind: exec.Unsupported, Op: "exact",
			Err: fmt.Errorf("table %q is not sharded", p.Table.Name)}
	}
	p.Workers = workers
	return db.RunExactPlan(ctx, p, db.defaultBudget())
}

// errSharded is the cause carried by operations a sharded preparation
// does not support.
func errSharded(what string) error {
	return fmt.Errorf("%s is not supported over a sharded table", what)
}
