package aqppp

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"aqppp/internal/stats"
)

func contractPrep(t *testing.T, rows int, seed uint64) (*DB, *Prepared) {
	t.Helper()
	db := NewDB()
	tbl := demoTable(rows, seed)
	if err := db.Register(tbl); err != nil {
		t.Fatal(err)
	}
	prep, err := db.Prepare(PrepareOptions{
		Table: "demo", Aggregate: "v", Dimensions: []string{"k"},
		SampleRate: 0.1, CellBudget: 25, Seed: 7, WithCountCube: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db, prep
}

func TestQueryWithContract(t *testing.T) {
	db, prep := contractPrep(t, 30000, 3)
	stmt := "SELECT SUM(v) FROM demo WHERE k BETWEEN 50 AND 300"
	c := Contract{MaxRelError: 0.1}
	res, err := prep.QueryWithContract(context.Background(), stmt, c)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Met(res.Value, res.HalfWidth) {
		t.Errorf("accepted contract missed: hw %v at value %v", res.HalfWidth, res.Value)
	}
	if res.Strategy == "" {
		t.Error("result carries no strategy")
	}
	truth, err := db.Exact(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(res.Value-truth.Value) / truth.Value; rel > 0.2 {
		t.Errorf("contract answer off truth by %v", rel)
	}
}

func TestQueryWithContractInfeasible(t *testing.T) {
	_, prep := contractPrep(t, 10000, 4)
	stmt := "SELECT SUM(v) FROM demo WHERE k BETWEEN 50 AND 300"
	_, err := prep.QueryWithContract(context.Background(), stmt, Contract{MaxRelError: 1e-10})
	if ErrorKindOf(err) != ErrContractInfeasible {
		t.Fatalf("impossible bound: kind = %v, want ErrContractInfeasible", ErrorKindOf(err))
	}
	var inf *ContractInfeasibleError
	if !errors.As(err, &inf) {
		t.Fatal("error does not unwrap to *ContractInfeasibleError")
	}
	if inf.TightestAbs <= 0 {
		t.Errorf("TightestAbs = %v, want positive guidance", inf.TightestAbs)
	}
	// The same bound escalates cleanly when exact is allowed.
	res, err := prep.QueryWithContract(context.Background(), stmt,
		Contract{MaxRelError: 1e-10, AllowExact: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != "exact" || res.HalfWidth != 0 {
		t.Errorf("AllowExact: strategy %q hw %v, want exact/0", res.Strategy, res.HalfWidth)
	}
}

// TestContractHonoredRandomized is the acceptance-criteria test: over a
// seeded randomized workload, every accepted contract's realized
// interval must satisfy the stated bound, every infeasible contract
// must be rejected at plan time with the typed error, and the realized
// error against the exact answer must stay inside the interval at
// roughly the stated confidence (checked loosely to stay deterministic
// but meaningful).
func TestContractHonoredRandomized(t *testing.T) {
	db, prep := contractPrep(t, 40000, 5)
	r := stats.NewRNG(123)
	aggs := []string{"SUM(v)", "COUNT(*)", "AVG(v)"}
	accepted, rejected, covered := 0, 0, 0
	for i := 0; i < 45; i++ {
		lo := r.Intn(400) + 1
		hi := lo + r.Intn(100) + 20
		stmt := "SELECT " + aggs[i%len(aggs)] + " FROM demo WHERE k BETWEEN " +
			itoa(lo) + " AND " + itoa(hi)
		c := Contract{MaxRelError: []float64{0.5, 0.2, 1e-9}[r.Intn(3)]}
		res, err := prep.QueryWithContract(context.Background(), stmt, c)
		if err != nil {
			if ErrorKindOf(err) != ErrContractInfeasible {
				t.Fatalf("%s rel=%v: unexpected error %v", stmt, c.MaxRelError, err)
			}
			// Plan-time rejection: PlanContract alone must reproduce it,
			// proving no run was needed to discover infeasibility.
			if _, perr := prep.PlanContract(stmt, c); ErrorKindOf(perr) != ErrContractInfeasible {
				t.Errorf("%s: run rejected but plan accepted", stmt)
			}
			rejected++
			continue
		}
		accepted++
		if !c.Met(res.Value, res.HalfWidth) {
			t.Errorf("%s rel=%v: realized hw %v at value %v misses the bound (strategy %s)",
				stmt, c.MaxRelError, res.HalfWidth, res.Value, res.Strategy)
		}
		truth, err := db.Exact(stmt)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Value-truth.Value) <= res.HalfWidth {
			covered++
		}
	}
	if accepted == 0 || rejected == 0 {
		t.Fatalf("workload too one-sided: %d accepted, %d rejected", accepted, rejected)
	}
	// 95% CIs should cover the truth ~95% of the time; require 75% so
	// the test stays deterministic across seeds yet still catches an
	// estimator whose intervals are fantasy.
	if float64(covered) < 0.75*float64(accepted) {
		t.Errorf("intervals covered truth in %d/%d accepted runs — intervals too narrow", covered, accepted)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestQueryProgressiveMonotone(t *testing.T) {
	_, prep := contractPrep(t, 30000, 6)
	stmt := "SELECT SUM(v) FROM demo WHERE k BETWEEN 50 AND 300"
	var rounds []ProgressiveRound
	sum, err := prep.QueryProgressive(context.Background(), stmt,
		ProgressiveOptions{StepRows: 2000, MaxRounds: 10, Seed: 9},
		func(r ProgressiveRound) error {
			rounds = append(rounds, r)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) == 0 {
		t.Fatal("no rounds streamed")
	}
	for i := 1; i < len(rounds); i++ {
		if rounds[i].HalfWidth > rounds[i-1].HalfWidth {
			t.Errorf("round %d widened: hw %v after %v", rounds[i].Round,
				rounds[i].HalfWidth, rounds[i-1].HalfWidth)
		}
		if rounds[i].SampleRows <= rounds[i-1].SampleRows {
			t.Errorf("round %d did not grow the sample: %d after %d", rounds[i].Round,
				rounds[i].SampleRows, rounds[i-1].SampleRows)
		}
	}
	last := rounds[len(rounds)-1]
	if sum.Value != last.Value || sum.HalfWidth != last.HalfWidth || sum.Rounds != len(rounds) {
		t.Errorf("summary %+v does not match final round %+v", sum, last)
	}
	if sum.Reason != ProgressiveMaxRounds && sum.Reason != ProgressiveSampleExhausted {
		t.Errorf("reason = %q, want max-rounds or sample-exhausted", sum.Reason)
	}
}

func TestQueryProgressiveContractMet(t *testing.T) {
	_, prep := contractPrep(t, 30000, 7)
	stmt := "SELECT SUM(v) FROM demo WHERE k BETWEEN 50 AND 300"
	c := Contract{MaxRelError: 0.2}
	sum, err := prep.QueryProgressive(context.Background(), stmt,
		ProgressiveOptions{Contract: &c, StepRows: 1500, Seed: 9}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Reason != ProgressiveContractMet || !sum.Met {
		t.Fatalf("reason = %q met = %v, want contract-met", sum.Reason, sum.Met)
	}
	if !c.Met(sum.Value, sum.HalfWidth) {
		t.Errorf("contract-met summary misses the bound: hw %v at %v", sum.HalfWidth, sum.Value)
	}
}

func TestQueryProgressiveYieldCancel(t *testing.T) {
	_, prep := contractPrep(t, 30000, 8)
	stop := errors.New("client gone")
	_, err := prep.QueryProgressive(context.Background(),
		"SELECT SUM(v) FROM demo WHERE k BETWEEN 50 AND 300",
		ProgressiveOptions{StepRows: 1000, MaxRounds: 20},
		func(r ProgressiveRound) error {
			if r.Round == 2 {
				return stop
			}
			return nil
		})
	if ErrorKindOf(err) != ErrCanceled || !errors.Is(err, stop) {
		t.Errorf("yield abort: err = %v (kind %v), want Canceled wrapping the yield error",
			err, ErrorKindOf(err))
	}
}

func TestQueryProgressiveBudgetExhausted(t *testing.T) {
	_, prep := contractPrep(t, 30000, 9)
	slow := func(r ProgressiveRound) error {
		time.Sleep(30 * time.Millisecond)
		return nil
	}
	sum, err := prep.QueryProgressiveBudget(context.Background(),
		"SELECT SUM(v) FROM demo WHERE k BETWEEN 50 AND 300",
		ProgressiveOptions{StepRows: 500, MaxRounds: 1000},
		Budget{Timeout: 80 * time.Millisecond}, slow)
	if err != nil {
		t.Fatalf("budget expiry mid-stream must end gracefully, got %v", err)
	}
	if sum.Reason != ProgressiveBudgetExhausted {
		t.Errorf("reason = %q, want budget-exhausted", sum.Reason)
	}
	if sum.Rounds == 0 {
		t.Error("graceful budget exit with zero rounds")
	}
}

func TestQueryProgressiveUnsupported(t *testing.T) {
	_, prep := contractPrep(t, 5000, 10)
	// MIN has no progressive estimator.
	_, err := prep.QueryProgressive(context.Background(),
		"SELECT MIN(v) FROM demo", ProgressiveOptions{}, nil)
	if ErrorKindOf(err) != ErrUnsupported {
		t.Errorf("MIN stream: kind = %v, want Unsupported", ErrorKindOf(err))
	}
}
