package aqppp

import (
	"context"

	"aqppp/internal/contract"
	"aqppp/internal/exec"
)

// Contract is an a-priori error bound (PilotDB-style inversion of the
// time-budget model): the caller states the error it can tolerate —
// MaxRelError and/or MaxAbsError at Confidence — and the planner picks
// the cheapest strategy that provably meets it (cube-covered exact
// prefix, AQP++ on the smallest sufficient subsample, bootstrap, or —
// only with AllowExact — a full exact scan), rejecting infeasible
// contracts up front with an ErrContractInfeasible-kind Error.
type Contract = contract.Contract

// ContractInfeasibleError is the typed cause carried by
// ErrContractInfeasible-kind errors: the contract plus the tightest
// half-width the planner predicts it could achieve without an exact
// scan. Recover it with errors.As to tell clients how much to loosen.
type ContractInfeasibleError = contract.InfeasibleError

// ContractResult is a contract query's answer: the usual Result plus
// which ladder rung produced it.
type ContractResult struct {
	Result
	// Strategy names the rung that answered: "cube", "approx",
	// "bootstrap", or "exact".
	Strategy string
	// Escalated reports that the planner's first choice missed the
	// bound at run time and a costlier rung answered instead.
	Escalated bool
}

// QueryWithContract answers a SQL statement under an a-priori error
// contract. Infeasible contracts fail before any scan work.
func (p *Prepared) QueryWithContract(ctx context.Context, statement string, c Contract) (ContractResult, error) {
	return p.QueryWithContractBudget(ctx, statement, c, p.db.defaultBudget())
}

// QueryWithContractBudget is QueryWithContract with an explicit
// per-call Budget replacing the DB-wide default.
func (p *Prepared) QueryWithContractBudget(ctx context.Context, statement string, c Contract, b Budget) (ContractResult, error) {
	plan, err := p.PlanContract(statement, c)
	if err != nil {
		return ContractResult{}, err
	}
	return p.RunContractPlan(ctx, plan, b)
}

// PlanContract parses, compiles and contract-plans a statement without
// running it (the plan-once counterpart of QueryWithContract; see
// DB.PlanExact). The contract planner runs here: an infeasible
// contract fails now, at plan time, with kind ErrContractInfeasible.
// Contract planning needs the resident sample and cube, so sharded and
// distributed preparations report ErrUnsupported.
func (p *Prepared) PlanContract(statement string, c Contract) (*exec.Plan, error) {
	if err := p.live("contract"); err != nil {
		return nil, err
	}
	if p.proc == nil {
		return nil, &exec.Error{Kind: exec.Unsupported, Op: "contract",
			Err: errDist("QueryWithContract")}
	}
	return exec.PlanContractStatement(p.proc, p.tbl, statement, c, contractSeed)
}

// contractSeed fixes the subsample drawn by the approx rung, so equal
// plans answer identically and cache keys stay honest.
const contractSeed = 0x5eed

// RunContractPlan executes a plan built by PlanContract under the
// context and an explicit budget.
func (p *Prepared) RunContractPlan(ctx context.Context, plan *exec.Plan, b Budget) (ContractResult, error) {
	if err := p.live("contract"); err != nil {
		return ContractResult{}, err
	}
	out, err := p.db.ex.Run(ctx, plan, b)
	if err != nil {
		return ContractResult{}, err
	}
	return ContractResult{
		Result:    toResult(out.Answer),
		Strategy:  out.ContractStrategy,
		Escalated: out.ContractEscalated,
	}, nil
}
